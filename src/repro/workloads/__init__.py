"""Reimplementations of the paper's benchmark workloads.

Each module reproduces the measurement loop of the corresponding
unmodified benchmark over the simulated socket API -- exercising
XenLoop exactly the way the paper's transparency claim requires (no
benchmark knows XenLoop exists):

* :mod:`repro.workloads.pingpong`     -- ICMP flood ping.
* :mod:`repro.workloads.netperf`      -- TCP_RR / UDP_RR / TCP_STREAM /
  UDP_STREAM.
* :mod:`repro.workloads.congestion`   -- N-to-1 incast and
  elephant/mice fairness (loss-shaped workloads the paper never ran).
* :mod:`repro.workloads.lmbench`      -- bw_tcp / lat_tcp.
* :mod:`repro.workloads.netpipe`      -- NetPIPE over :mod:`repro.mpi`.
* :mod:`repro.workloads.osu`          -- OSU MPI uni/bi bandwidth and
  latency.
* :mod:`repro.workloads.migration_rr` -- netperf TCP_RR sampled during
  live migration (Fig. 11).
"""

from repro.workloads import (
    congestion,
    lmbench,
    migration_rr,
    netperf,
    netpipe,
    osu,
    pingpong,
)

__all__ = [
    "congestion",
    "lmbench",
    "migration_rr",
    "netperf",
    "netpipe",
    "osu",
    "pingpong",
]
