"""Engine-throughput regression bench (events/sec + wall-clock).

Not a paper figure: this tracks the *simulator's* own speed on the
profiled workload from the fast-path PR -- ``udp_stream`` over the
``xenloop`` scenario, 4 KB messages, 0.5 s simulated -- so the perf
trajectory is visible from PR to PR.  Results go to ``BENCH_engine.json``
at the repo root (events processed, wall-clock, events/sec, plus the
simulated result so determinism drift is also visible).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py

or as part of the bench suite (``make bench-smoke`` / ``pytest
benchmarks/ --benchmark-only``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from repro import report, scenarios, trace
from repro.workloads import netperf

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_engine.json"


def run(
    scenario: str = "xenloop",
    msg_size: int = 4096,
    duration: float = 0.5,
    output: pathlib.Path = DEFAULT_OUTPUT,
) -> dict:
    """Run the fixed workload once, print and persist the engine stats."""
    t0 = time.perf_counter()
    scn = scenarios.build(scenario)
    result = netperf.udp_stream(scn, msg_size=msg_size, duration=duration)
    wall = time.perf_counter() - t0

    stats = trace.engine_stats(scn.sim, wall_s=wall)
    payload = {
        "workload": {
            "scenario": scenario,
            "msg_size": msg_size,
            "duration": duration,
        },
        "events": stats["events"],
        "sim_time": stats["sim_time"],
        "wall_s": round(stats["wall_s"], 4),
        "events_per_sec": round(stats["events_per_sec"], 1),
        "result": {
            "bytes_received": result.bytes_received,
            "mbps": result.mbps,
            "messages_sent": result.messages_sent,
            "drops": result.drops,
        },
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(report.format_engine_stats(stats))
    print(f"simulated: {result.mbps:,.1f} Mbit/s, {result.drops} drops")
    print(f"wrote {output}")
    return payload


def test_engine_throughput(run_once, benchmark):
    payload = run_once(run)
    benchmark.extra_info["events"] = payload["events"]
    benchmark.extra_info["events_per_sec"] = payload["events_per_sec"]
    benchmark.extra_info["wall_s"] = payload["wall_s"]
    assert payload["events"] > 0
    assert payload["result"]["bytes_received"] > 0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default="xenloop")
    parser.add_argument("--msg-size", type=int, default=4096)
    parser.add_argument("--duration", type=float, default=0.5)
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args()
    run(args.scenario, args.msg_size, args.duration, args.output)


if __name__ == "__main__":
    main()
