"""Scenario builders: topology invariants and warmup behaviour."""

import pytest

from repro import scenarios
from repro.core.channel import ChannelState
from repro.sim.engine import SimulationError

FAST = scenarios.DEFAULT_COSTS.replace(discovery_period=0.2, bootstrap_timeout=0.01)


class TestBuilders:
    def test_build_by_name(self):
        for name in scenarios.SCENARIO_BUILDERS:
            scn = scenarios.build(name, FAST)
            assert scn.name == name
            assert scn.node_a.stack is not None

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            scenarios.build("warp_drive")

    def test_native_loopback_single_node(self):
        scn = scenarios.native_loopback(FAST)
        assert scn.node_a is scn.node_b
        assert scn.ip_a == scn.ip_b

    def test_inter_machine_two_machines(self):
        scn = scenarios.inter_machine(FAST)
        assert scn.node_a is not scn.node_b
        assert scn.switch is not None
        assert len(scn.machines) == 2

    def test_netfront_shares_one_machine(self):
        scn = scenarios.netfront_netback(FAST)
        assert len(scn.machines) == 1
        assert scn.node_a.machine is scn.node_b.machine
        assert not scn.modules

    def test_xenloop_has_modules_and_discovery(self):
        scn = scenarios.xenloop(FAST)
        assert set(scn.modules) == {"vm1", "vm2"}
        assert scn.discovery is not None

    def test_xenloop_fifo_order_plumbed(self):
        scn = scenarios.xenloop(FAST, fifo_order=10)
        assert all(m.fifo_order == 10 for m in scn.modules.values())

    def test_migration_pair_topology(self):
        scn = scenarios.migration_pair(FAST)
        assert len(scn.machines) == 2
        assert scn.node_a.machine is not scn.node_b.machine
        assert not scn.expect_channels

    def test_guest_macs_globally_unique(self):
        scn = scenarios.migration_pair(FAST)
        assert scn.node_a.mac != scn.node_b.mac


class TestWarmup:
    def test_warmup_connects_channels(self):
        scn = scenarios.xenloop(FAST)
        scn.warmup(max_wait=10.0)
        for module in scn.modules.values():
            assert any(
                ch.state is ChannelState.CONNECTED for ch in module.channels.values()
            )

    def test_warmup_resolves_arp(self):
        scn = scenarios.inter_machine(FAST)
        scn.warmup()
        assert scn.node_a.stack.arp.lookup(scn.ip_b) is not None

    def test_warmup_timeout_raises(self):
        scn = scenarios.xenloop(FAST)
        # sabotage: unload one module so channels can never connect
        module = scn.modules["vm2"]
        proc = scn.sim.process(module.unload())
        scn.sim.run_until_complete(proc, timeout=5)
        with pytest.raises(SimulationError, match="never connected"):
            scn.warmup(max_wait=1.5)

    def test_migration_pair_warmup_skips_channel_check(self):
        scn = scenarios.migration_pair(FAST)
        scn.warmup()  # must not raise despite no channels possible
