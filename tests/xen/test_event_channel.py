"""Event-channel semantics: binding, 1-bit coalescing, teardown races."""

import pytest

from repro.calibration import DEFAULT_COSTS
from repro.sim.engine import Simulator
from repro.xen.event_channel import EventChannelError, EventChannelSubsys


@pytest.fixture
def evtchn(sim):
    # Direct execution: charge nothing, run handler synchronously.
    def exec_in_domain(domid, cost, fn):
        fn()

    return EventChannelSubsys(sim, DEFAULT_COSTS, exec_in_domain)


def make_pair(evtchn):
    p1 = evtchn.alloc_unbound(1, 2)
    p2 = evtchn.bind_interdomain(2, 1, p1.port)
    return p1, p2


class TestBinding:
    def test_bind_links_peers(self, evtchn):
        p1, p2 = make_pair(evtchn)
        assert p1.peer is p2 and p2.peer is p1

    def test_bind_unknown_port(self, evtchn):
        with pytest.raises(EventChannelError):
            evtchn.bind_interdomain(2, 1, 999)

    def test_bind_reserved_for_other_domain(self, evtchn):
        p1 = evtchn.alloc_unbound(1, 2)
        with pytest.raises(EventChannelError):
            evtchn.bind_interdomain(3, 1, p1.port)

    def test_double_bind_rejected(self, evtchn):
        p1 = evtchn.alloc_unbound(1, 2)
        evtchn.bind_interdomain(2, 1, p1.port)
        with pytest.raises(EventChannelError):
            evtchn.bind_interdomain(2, 1, p1.port)

    def test_port_numbers_per_domain(self, evtchn):
        a = evtchn.alloc_unbound(1, 2)
        b = evtchn.alloc_unbound(1, 2)
        assert a.port != b.port


class TestNotification:
    def test_notify_runs_handler(self, sim, evtchn):
        p1, p2 = make_pair(evtchn)
        hits = []
        evtchn.set_handler(p2, lambda: hits.append(sim.now))
        evtchn.notify(p1)
        sim.run()
        assert len(hits) == 1
        # delivery latency is jittered around the calibrated mean
        base = DEFAULT_COSTS.virq_delivery_latency
        spread = DEFAULT_COSTS.virq_jitter / 2
        assert base * (1 - spread) <= hits[0] <= base * (1 + spread)

    def test_coalescing_one_upcall_for_burst(self, sim, evtchn):
        p1, p2 = make_pair(evtchn)
        hits = []
        evtchn.set_handler(p2, lambda: hits.append(sim.now))
        for _ in range(10):
            evtchn.notify(p1)
        sim.run()
        assert len(hits) == 1
        assert p1.notifies_coalesced == 9

    def test_notify_after_delivery_triggers_again(self, sim, evtchn):
        p1, p2 = make_pair(evtchn)
        hits = []
        evtchn.set_handler(p2, lambda: hits.append(sim.now))
        evtchn.notify(p1)
        sim.run()
        evtchn.notify(p1)
        sim.run()
        assert len(hits) == 2

    def test_notify_during_handler_redelivers(self, sim, evtchn):
        """The clear-before-handle race: a notify landing while the handler
        runs must produce a fresh upcall."""
        p1, p2 = make_pair(evtchn)
        hits = []

        def handler():
            hits.append(sim.now)
            if len(hits) == 1:
                evtchn.notify(p1)  # peer pokes us again mid-handler

        evtchn.set_handler(p2, handler)
        evtchn.notify(p1)
        sim.run()
        assert len(hits) == 2

    def test_bidirectional(self, sim, evtchn):
        p1, p2 = make_pair(evtchn)
        hits = {"a": 0, "b": 0}
        evtchn.set_handler(p1, lambda: hits.__setitem__("a", hits["a"] + 1))
        evtchn.set_handler(p2, lambda: hits.__setitem__("b", hits["b"] + 1))
        evtchn.notify(p1)
        evtchn.notify(p2)
        sim.run()
        assert hits == {"a": 1, "b": 1}

    def test_notify_without_handler_is_noop(self, sim, evtchn):
        p1, _p2 = make_pair(evtchn)
        evtchn.notify(p1)
        sim.run()  # no exception


class TestTeardown:
    def test_notify_closed_port_raises(self, sim, evtchn):
        p1, _ = make_pair(evtchn)
        evtchn.close(p1)
        with pytest.raises(EventChannelError):
            evtchn.notify(p1)

    def test_notify_to_closed_peer_is_lost(self, sim, evtchn):
        p1, p2 = make_pair(evtchn)
        hits = []
        evtchn.set_handler(p2, lambda: hits.append(1))
        evtchn.close(p2)
        evtchn.notify(p1)  # silently dropped, like real Xen
        sim.run()
        assert hits == []

    def test_close_unlinks_peer(self, evtchn):
        p1, p2 = make_pair(evtchn)
        evtchn.close(p1)
        assert p2.peer is None

    def test_close_all_for_domain(self, evtchn):
        make_pair(evtchn)
        make_pair(evtchn)
        assert evtchn.close_all_for(1) == 2

    def test_delivery_to_port_closed_in_flight(self, sim, evtchn):
        p1, p2 = make_pair(evtchn)
        hits = []
        evtchn.set_handler(p2, lambda: hits.append(1))
        evtchn.notify(p1)
        evtchn.close(p2)  # close while upcall is in flight
        sim.run()
        assert hits == []

    def test_bind_to_closed_port_rejected(self, evtchn):
        p1 = evtchn.alloc_unbound(1, 2)
        evtchn.close(p1)
        with pytest.raises(EventChannelError):
            evtchn.bind_interdomain(2, 1, p1.port)
