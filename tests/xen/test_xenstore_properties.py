"""Property-based tests for XenStore tree semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xen.xenstore import XenStore, XenStoreError

_segment = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-_", min_size=1, max_size=8
)
_path = st.lists(_segment, min_size=1, max_size=4).map(lambda parts: "/" + "/".join(parts))
_value = st.text(max_size=32)


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(entries=st.dictionaries(_path, _value, max_size=20))
    def test_write_read_consistency(self, entries):
        store = XenStore()
        for path, value in entries.items():
            store.write(0, path, value)
        # Later writes may overwrite prefixes' values but never delete
        # sibling entries; every written leaf reads back.
        for path, value in entries.items():
            assert store.read(0, path) == value

    @settings(max_examples=50, deadline=None)
    @given(
        entries=st.dictionaries(_path, _value, min_size=1, max_size=15),
        data=st.data(),
    )
    def test_rm_removes_exactly_the_subtree(self, entries, data):
        store = XenStore()
        for path, value in entries.items():
            store.write(0, path, value)
        victim = data.draw(st.sampled_from(sorted(entries)))
        store.rm(0, victim)
        for path, value in entries.items():
            in_subtree = path == victim or path.startswith(victim + "/")
            if in_subtree:
                assert not store.exists(0, path)
            else:
                assert store.read(0, path) == value

    @settings(max_examples=30, deadline=None)
    @given(entries=st.dictionaries(_path, _value, min_size=1, max_size=10))
    def test_ls_lists_exactly_the_children(self, entries):
        store = XenStore()
        for path, value in entries.items():
            store.write(0, path, value)
        roots = {p.split("/")[1] for p in entries}
        assert set(store.ls(0, "/")) == roots

    @settings(max_examples=30, deadline=None)
    @given(
        domid=st.integers(min_value=1, max_value=100),
        suffix=_segment,
        value=_value,
    )
    def test_guest_confined_to_own_subtree(self, domid, suffix, value):
        store = XenStore()
        own = f"/local/domain/{domid}/{suffix}"
        store.write(domid, own, value)
        assert store.read(domid, own) == value
        other = f"/local/domain/{domid + 1}/{suffix}"
        try:
            store.write(domid, other, value)
            assert False, "permission check failed to fire"
        except XenStoreError:
            pass
