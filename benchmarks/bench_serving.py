"""Open-loop serving benchmark: tail latency vs offered load.

Probes each data path's saturation capacity with a short overload burst,
then sweeps the ``xenloop_serving`` cell at 0.5x / 0.8x / 0.95x of that
capacity -- the classic open-loop load/latency curve: p50 barely moves,
p99/p999 inflate as the offered load approaches saturation and queueing
dominates.  Each cell runs in a **forked child** so its ``peak_rss_kb``
is that cell's high-water mark alone (and proves the streaming
histogram holds memory flat at any request count: no per-sample list
exists anywhere on the hot path).

Appends one ``kind="serving"`` entry per cell to ``BENCH_engine.json``
so the regression gate (``tools/check_bench_regression.py``) tracks
each cell's events/s like-for-like by its ``cell`` label.  ``--smoke``
shrinks the request counts for CI (``make serving-smoke``); the full
run drives >= 100k open-loop requests through the FIFO path.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_engine.json"
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

#: offered-load fractions of the probed capacity swept per data path.
LOAD_FRACTIONS = (0.5, 0.8, 0.95)

#: requests per sweep cell (full / smoke).  The full FIFO sweep alone
#: is 3 x 35,000 = 105,000 open-loop requests.
FULL_REQUESTS = {"fifo": 35_000, "netfront": 4_000}
SMOKE_REQUESTS = {"fifo": 800, "netfront": 300}

#: requests in the capacity probe (overload burst; completed/duration
#: is the saturation throughput).
FULL_PROBE = {"fifo": 4_000, "netfront": 600}
SMOKE_PROBE = {"fifo": 500, "netfront": 150}

#: probe offered rate -- far beyond either path's capacity, so the
#: achieved rate is service-limited, not arrival-limited.
PROBE_RATE = 1_000_000.0


def _cell_label(data_path: str, fraction: float) -> str:
    return f"serving/{data_path}/load{fraction:g}"


def _measure(data_path: str, requests: int, rate: float) -> dict:
    """Run one serving cell; returns its summary plus peak RSS.

    Runs inside the forked child (see :func:`_measure_forked`) so
    ``peak_rss_kb`` is this cell's high-water mark alone.
    """
    import resource

    from repro.scenarios import run_serving_cell

    t0 = time.perf_counter()
    summary = run_serving_cell(data_path=data_path, requests=requests, rate=rate)
    wall = time.perf_counter() - t0
    summary["wall_s"] = round(wall, 6)
    summary["events_per_sec"] = (
        round(summary["events"] / wall, 1) if wall > 0 else 0.0
    )
    summary["peak_rss_kb"] = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return summary


def _measure_forked(data_path: str, requests: int, rate: float) -> dict:
    """Run :func:`_measure` in a forked child, piping the result back.

    ``ru_maxrss`` is a process-lifetime high-water mark, so measuring
    every sweep point in one process would report the largest cell's
    footprint for all of them.  Falls back to in-process measurement
    where ``os.fork`` is unavailable.
    """
    if not hasattr(os, "fork"):
        entry = _measure(data_path, requests, rate)
        entry["rss_shared_process"] = True
        return entry

    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:  # child
        status = 1
        try:
            os.close(read_fd)
            payload = json.dumps(_measure(data_path, requests, rate)).encode()
            os.write(write_fd, payload)
            os.close(write_fd)
            status = 0
        finally:
            os._exit(status)
    os.close(write_fd)
    chunks = []
    while True:
        chunk = os.read(read_fd, 65536)
        if not chunk:
            break
        chunks.append(chunk)
    os.close(read_fd)
    _, wait_status = os.waitpid(pid, 0)
    if os.waitstatus_to_exitcode(wait_status) != 0 or not chunks:
        raise RuntimeError(f"serving child ({data_path}) died without a result")
    return json.loads(b"".join(chunks))


def probe_capacity(data_path: str, smoke: bool) -> float:
    """Saturation throughput (req/s) of one data path: offer requests
    far faster than the path can serve and measure the achieved rate."""
    requests = (SMOKE_PROBE if smoke else FULL_PROBE)[data_path]
    summary = _measure_forked(data_path, requests, PROBE_RATE)
    return summary["throughput_rps"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small CI-sized cells")
    parser.add_argument(
        "--dry-run", action="store_true", help="measure without appending history"
    )
    parser.add_argument("--output", default=DEFAULT_OUTPUT, type=pathlib.Path)
    parser.add_argument(
        "--data-paths", default="fifo,netfront",
        help="comma-separated data paths to sweep (default: fifo,netfront)",
    )
    args = parser.parse_args()

    from bench_engine_throughput import _git_sha, _load_history

    sha = _git_sha()
    requests_by_path = SMOKE_REQUESTS if args.smoke else FULL_REQUESTS
    entries = []
    for data_path in args.data_paths.split(","):
        capacity = probe_capacity(data_path, smoke=args.smoke)
        print(f"{data_path}: capacity {capacity:,.0f} req/s")
        for fraction in LOAD_FRACTIONS:
            label = _cell_label(data_path, fraction)
            rate = capacity * fraction
            summary = _measure_forked(data_path, requests_by_path[data_path], rate)
            entry = {
                "kind": "serving",
                "cell": label,
                "sha": sha,
                "smoke": bool(args.smoke),
                "capacity_rps": round(capacity, 1),
                "load_fraction": fraction,
                **summary,
            }
            entries.append(entry)
            print(
                f"  {label:<26} rate={rate:>9,.0f}/s  "
                f"p50={summary['p50_us']:>8.1f}us  p99={summary['p99_us']:>9.1f}us  "
                f"p999={summary['p999_us']:>9.1f}us  "
                f"slo_viol={summary['slo_violations']}  "
                f"{summary['events_per_sec']:>10,.0f} events/s  "
                f"rss={summary['peak_rss_kb']:,}kB"
            )

    if not args.dry_run:
        history = _load_history(args.output)
        history.extend(entries)
        data = json.loads(args.output.read_text()) if args.output.exists() else {}
        workload = data.get("workload", {}) if isinstance(data, dict) else {}
        args.output.write_text(
            json.dumps({"workload": workload, "history": history}, indent=2) + "\n"
        )
        print(f"wrote {args.output} ({len(history)} history entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
