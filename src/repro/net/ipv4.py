"""IPv4 layer: routing, output path with POST_ROUTING hook, input path
with reassembly and protocol dispatch.

Ordering matters and mirrors Linux: on output the netfilter
POST_ROUTING chain runs **before** fragmentation (``ip_output`` ->
``NF_HOOK`` -> ``ip_finish_output`` -> ``ip_fragment``), which is why
the XenLoop hook sees whole UDP datagrams up to 64 KB rather than MTU
fragments -- a key reason its large-message bandwidth beats the
netfront path (paper Fig. 4).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.net.addr import IPv4Addr
from repro.net.ethernet import ETH_P_IP
from repro.net.netfilter import HookPoint, Verdict
from repro.net.packet import EthHeader, IPv4Header, Packet, TcpHeader

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.devices import NetDevice
    from repro.net.packet import L4Header
    from repro.net.stack import NetworkStack

__all__ = ["Ipv4Layer", "Reassembler", "RoutingError"]

#: reassembly buffers older than this are purged (Linux default 30 s).
FRAG_TIMEOUT = 30.0


class RoutingError(Exception):
    """No route to host."""


class _FragBuffer:
    __slots__ = ("chunks", "total", "created")

    def __init__(self, created: float):
        self.chunks: dict[int, bytes] = {}
        self.total: Optional[int] = None
        self.created = created


class Reassembler:
    """IP fragment reassembly, keyed by (src, dst, ident, proto)."""

    def __init__(self, sim):
        self.sim = sim
        self._buffers: dict[tuple, _FragBuffer] = {}
        self.completed = 0
        self.timed_out = 0

    def snapshot_state(self) -> dict:
        """Per-flow fragment buffers (chunk counts and byte coverage)."""
        return {
            "buffers": {
                f"{key[0]}>{key[1]}#{key[2]}p{key[3]}": {
                    "chunks": len(buf.chunks),
                    "bytes": sum(len(c) for c in buf.chunks.values()),
                    "total": buf.total,
                    "created": buf.created,
                }
                for key, buf in self._buffers.items()
            },
            "completed": self.completed,
            "timed_out": self.timed_out,
        }

    def add(self, packet: Packet) -> Optional[Packet]:
        """Absorb a fragment; return the reassembled packet when complete."""
        # Age out stale buffers on EVERY fragment arrival.  Purging only
        # when a datagram completed leaked buffers forever on flows whose
        # datagrams never complete (a sender that died mid-burst).
        self._purge()
        ip = packet.ip
        key = (ip.src, ip.dst, ip.ident, ip.proto)
        buf = self._buffers.get(key)
        if buf is None:
            buf = self._buffers[key] = _FragBuffer(self.sim.now)
        buf.chunks[ip.frag_offset] = packet.payload
        if not ip.more_frags:
            buf.total = ip.frag_offset + len(packet.payload)
        if buf.total is None:
            return None
        # Check contiguous coverage of [0, total).
        covered = 0
        while covered < buf.total:
            chunk = buf.chunks.get(covered)
            if chunk is None:
                return None
            covered += len(chunk)
        if covered != buf.total:
            return None
        del self._buffers[key]
        self.completed += 1
        body = b"".join(buf.chunks[off] for off in sorted(buf.chunks))
        hdr = ip.replaced(frag_offset=0, more_frags=False,
                          total_length=IPv4Header.HEADER_LEN + len(body))
        return Packet.from_l3_bytes(hdr.to_bytes() + body)

    def _purge(self) -> None:
        cutoff = self.sim.now - FRAG_TIMEOUT
        stale = [k for k, b in self._buffers.items() if b.created < cutoff]
        for k in stale:
            del self._buffers[k]
            self.timed_out += 1

    @property
    def pending(self) -> int:
        """Number of incomplete reassembly buffers."""
        return len(self._buffers)


class Ipv4Layer:
    """Per-stack IPv4 input/output."""

    def __init__(self, stack: "NetworkStack"):
        self.stack = stack
        self._next_ident = 1
        self.reassembler = Reassembler(stack.node.sim)
        #: proto number -> generator function(packet) run in softirq context.
        self.protocols: dict[int, Callable] = {}
        self.tx_packets = 0
        self.rx_packets = 0
        self.dropped = 0

    def register_protocol(self, proto: int, handler: Callable) -> None:
        """Register an L4 input handler for an IP protocol number."""
        self.protocols[proto] = handler

    # -- routing ----------------------------------------------------------
    def route(self, dst: IPv4Addr) -> tuple["NetDevice", Optional[IPv4Addr]]:
        """Return (device, next_hop_ip); next_hop None means local delivery."""
        stack = self.stack
        if dst == stack.ip:
            return stack.loopback, None
        dev = stack.primary_device()
        if dev is None:
            raise RoutingError(f"{stack.node.name}: no device for {dst}")
        if dst.in_subnet(stack.network, stack.prefix_len):
            return dev, dst
        if stack.gateway is not None:
            return dev, stack.gateway
        raise RoutingError(f"{stack.node.name}: no route to {dst}")

    # -- output path --------------------------------------------------------
    def output(self, dst: IPv4Addr, proto: int, l4: "L4Header", payload: bytes):
        """Send one L3 packet (generator).  Returns True when handed off.

        Runs in the caller's (sender's) process context; all transmit-side
        CPU is charged here.
        """
        node = self.stack.node
        costs = node.costs
        yield node.exec(costs.ip_layer)
        dev, next_hop = self.route(dst)
        ident = self._next_ident
        self._next_ident = (self._next_ident + 1) & 0xFFFF or 1
        hdr = IPv4Header.fresh(src=self.stack.ip, dst=dst, proto=proto, ident=ident)
        packet = Packet(payload=payload, l4=l4, ip=hdr)
        packet.ip.total_length = packet.l3_len
        packet.meta["ts_ip_out"] = node.sim.now

        netfilter = self.stack.netfilter
        if netfilter.active(HookPoint.POST_ROUTING):
            verdict = yield from netfilter.run(HookPoint.POST_ROUTING, packet, dev)
        else:
            verdict = Verdict.ACCEPT
        if verdict is Verdict.STOLEN:
            self.tx_packets += 1
            return True
        if verdict is Verdict.DROP:
            self.dropped += 1
            return False

        if next_hop is None:
            # Local delivery via loopback.
            packet.eth = EthHeader.fresh(dst=dev.mac, src=dev.mac, ethertype=ETH_P_IP)
            yield node.exec(dev.tx_cost(packet))
            yield dev.queue_xmit(packet)
            self.tx_packets += 1
            return True

        dst_mac = self.stack.arp.lookup(next_hop)
        if dst_mac is None:
            dst_mac = yield from self.stack.arp.resolve(next_hop)
            if dst_mac is None:
                self.dropped += 1
                return False
        else:
            yield node.exec(costs.arp_lookup)

        gso_ok = dev.gso and isinstance(packet.l4, TcpHeader)
        if packet.l3_len - IPv4Header.HEADER_LEN <= dev.mtu or gso_ok:
            packet.eth = EthHeader.fresh(dst=dst_mac, src=dev.mac, ethertype=ETH_P_IP)
            yield node.exec(dev.tx_cost(packet))
            yield dev.queue_xmit(packet)
            self.tx_packets += 1
            return True

        # Fragment: MTU bytes of L3 payload per fragment, 8-byte aligned.
        body = packet.l3_payload_bytes()
        step = (dev.mtu - IPv4Header.HEADER_LEN) & ~7
        offset = 0
        while offset < len(body):
            chunk = body[offset : offset + step]
            more = offset + len(chunk) < len(body)
            fhdr = hdr.replaced(frag_offset=offset, more_frags=more)
            frag = Packet(payload=chunk, ip=fhdr)
            frag.ip.total_length = frag.l3_len
            frag.eth = EthHeader.fresh(dst=dst_mac, src=dev.mac, ethertype=ETH_P_IP)
            frag.meta["ts_ip_out"] = node.sim.now
            yield node.exec(costs.ip_fragment + dev.tx_cost(frag))
            yield dev.queue_xmit(frag)
            self.tx_packets += 1
            offset += len(chunk)
        return True

    # -- input path ---------------------------------------------------------
    def input(self, packet: Packet, dev) -> "object":
        """Process one received L3 packet (generator, softirq context)."""
        node = self.stack.node
        costs = node.costs
        yield node.exec(costs.ip_layer)
        self.rx_packets += 1
        if packet.ip is None:
            # Frame claimed ETH_P_IP but carries no parseable IP header.
            self.dropped += 1
            return

        netfilter = self.stack.netfilter
        if netfilter.active(HookPoint.PRE_ROUTING):
            verdict = yield from netfilter.run(HookPoint.PRE_ROUTING, packet, dev)
            if verdict is not Verdict.ACCEPT:
                if verdict is Verdict.DROP:
                    self.dropped += 1
                return

        if packet.ip.dst != self.stack.ip:
            # Hosts are not routers in this model.
            self.dropped += 1
            return

        if packet.is_fragment:
            yield node.exec(costs.ip_fragment)
            packet = self.reassembler.add(packet)
            if packet is None:
                return

        handler = self.protocols.get(packet.ip.proto)
        if handler is None:
            self.dropped += 1
            return
        yield from handler(packet)
