"""Auto-registration of scenario builders.

Every builder decorated with :func:`scenario` lands in
``SCENARIO_BUILDERS`` at definition time, so the registry can never
drift from the set of builders (the pre-registry bug: ``xenloop_mesh``
and ``migration_pair`` existed but ``build()`` and the CLI rejected
them).  ``cli.py``, ``report.py`` and ``trace.py`` all consume this
registry rather than private name lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.calibration import DEFAULT_COSTS, CostModel
from repro.scenarios.base import Scenario

__all__ = [
    "SCENARIO_BUILDERS",
    "SCENARIO_SPECS",
    "ScenarioSpec",
    "build",
    "scenario",
    "scenario_names",
]


@dataclass(frozen=True)
class ScenarioSpec:
    """Registry entry: the builder plus its one-line description."""

    name: str
    builder: Callable[..., Scenario]
    description: str


#: name -> builder callable (the decorator keeps this in sync).
SCENARIO_BUILDERS: dict[str, Callable[..., Scenario]] = {}
#: name -> full registry entry.
SCENARIO_SPECS: dict[str, ScenarioSpec] = {}


def scenario(name: str | None = None, *, description: str | None = None):
    """Class of decorators registering a scenario builder.

    ``@scenario()`` registers under the function's own name with its
    docstring's first line as the description; both can be overridden.
    """

    def decorate(fn: Callable[..., Scenario]) -> Callable[..., Scenario]:
        key = name or fn.__name__
        if key in SCENARIO_BUILDERS:
            raise ValueError(f"scenario {key!r} registered twice")
        doc = description
        if doc is None:
            doc = (fn.__doc__ or "").strip().splitlines()[0] if fn.__doc__ else ""
        SCENARIO_SPECS[key] = ScenarioSpec(name=key, builder=fn, description=doc)
        SCENARIO_BUILDERS[key] = fn
        return fn

    return decorate


def scenario_names() -> list[str]:
    """All registered scenario names, in registration order."""
    return list(SCENARIO_BUILDERS)


def build(name: str, costs: CostModel = DEFAULT_COSTS, **kwargs) -> Scenario:
    """Build a scenario by name (see SCENARIO_BUILDERS).

    ``costs`` is forwarded by keyword so builders with leading
    positional parameters of their own (``xenloop_mesh(n_guests, ...)``)
    compose with per-scenario ``kwargs``.
    """
    try:
        builder = SCENARIO_BUILDERS[name]
    except KeyError:
        raise ValueError(f"unknown scenario {name!r}; choose from {sorted(SCENARIO_BUILDERS)}")
    return builder(costs=costs, **kwargs)
