"""Ablation: discovery-scan period versus channel setup delay.

The Dom0 discovery module scans XenStore every 5 seconds (paper
Sect. 3.2).  A longer period costs nothing on the data path but delays
how soon newly co-resident guests can switch to the channel -- the
window during which traffic still crawls through netfront.  This bench
measures time-from-first-traffic to channel-connected as a function of
the scan period.
"""

from repro import report, scenarios
from repro.core.channel import ChannelState

from _bench_utils import emit

PERIODS = [0.5, 1.0, 2.0, 5.0, 10.0]


def _setup_delay(period: float) -> float:
    costs = scenarios.DEFAULT_COSTS.replace(
        discovery_period=period, bootstrap_timeout=0.02
    )
    scn = scenarios.xenloop(costs)
    sim = scn.sim
    t0 = sim.now

    def connected():
        return all(
            any(ch.state is ChannelState.CONNECTED for ch in m.channels.values())
            for m in scn.modules.values()
        )

    # Steady trickle of traffic from t0 (first traffic = t0); measure
    # until the channel carries it.
    def pinger():
        stack = scn.node_a.stack
        seq = 0
        while not connected():
            ident = stack.icmp.alloc_ident()
            waiter = yield from stack.icmp.send_echo(scn.ip_b, ident, seq)
            yield sim.any_of([waiter, sim.timeout(0.05)])
            yield sim.timeout(0.05)
            seq += 1

    proc = sim.process(pinger())
    sim.run_until_complete(proc, timeout=20 * period + 30)
    return sim.now - t0


def _measure():
    return [_setup_delay(p) for p in PERIODS]


def test_ablation_discovery_period(run_once, benchmark):
    delays = run_once(_measure)
    emit(
        "ablation_discovery",
        report.format_series(
            "Ablation: channel setup delay (s) vs discovery period (s)",
            "period_s",
            PERIODS,
            {"setup_delay_s": delays},
            precision=2,
        ),
    )
    benchmark.extra_info["delays"] = dict(zip(PERIODS, (round(d, 2) for d in delays)))
    # Setup delay is bounded by roughly one scan period plus bootstrap.
    for period, delay in zip(PERIODS, delays):
        assert delay < 2 * period + 1.0
    # And grows with the period overall.
    assert delays[-1] > delays[0]
