"""The paper's evaluation topologies as declarative specs (Sect. 4).

* ``inter_machine``     -- two native hosts across a 1 Gbps switch.
* ``netfront_netback``  -- two guests on one Xen machine, standard path.
* ``xenloop``           -- same, with the XenLoop module in both guests
  and the discovery module in Dom0.
* ``native_loopback``   -- two processes on one non-virtualized host
  over the local loopback interface (the baseline ceiling).
* ``xenloop_mesh``      -- N co-resident guests, XenLoop everywhere.
* ``migration_pair``    -- two Xen machines on a switch (Fig. 11).
* ``xenloop_cluster``   -- many guests across two Xen machines (the
  roadmap's churn-scale topology).

Each builder is a *thin spec*: it declares the cluster with
:class:`repro.topology.ClusterSpec` and lets the topology layer build
it.  The :func:`~repro.scenarios.registry.scenario` decorator
registers every builder, so ``build(name)`` and the CLI always see the
full set.
"""

from __future__ import annotations

from repro import topology
from repro.calibration import DEFAULT_COSTS, CostModel
from repro.scenarios.base import Scenario
from repro.scenarios.registry import scenario

__all__ = [
    "inter_machine",
    "migration_pair",
    "native_loopback",
    "netfront_netback",
    "xenloop",
    "xenloop_cluster",
    "xenloop_mesh",
]


@scenario()
def inter_machine(costs: CostModel = DEFAULT_COSTS, seed: int = 0) -> Scenario:
    """Two native machines across a 1 Gbps Ethernet switch."""
    spec = topology.ClusterSpec(
        name="inter_machine",
        machines=tuple(
            topology.MachineSpec(
                name=f"m{i}",
                kind="native",
                guests=(topology.GuestSpec(f"host{i}", ip=f"10.0.0.{i + 1}", module=None),),
            )
            for i in range(2)
        ),
    )
    return spec.build(costs, seed=seed)


@scenario()
def native_loopback(costs: CostModel = DEFAULT_COSTS, seed: int = 0) -> Scenario:
    """Two processes on one non-virtualized host, via the loopback device."""
    spec = topology.ClusterSpec(
        name="native_loopback",
        machines=(
            topology.MachineSpec(
                name="host",
                kind="native",
                guests=(topology.GuestSpec("host", ip="10.0.0.1", module=None),),
            ),
        ),
    )
    return spec.build(costs, seed=seed)


@scenario()
def netfront_netback(costs: CostModel = DEFAULT_COSTS, seed: int = 0) -> Scenario:
    """Co-resident guests over the standard split-driver path via Dom0."""
    spec = topology.ClusterSpec(
        name="netfront_netback",
        machines=(
            topology.MachineSpec(
                name="xenhost",
                guests=(
                    topology.GuestSpec("vm1", ip="10.0.0.1", module=None),
                    topology.GuestSpec("vm2", ip="10.0.0.2", module=None),
                ),
            ),
        ),
    )
    return spec.build(costs, seed=seed)


@scenario()
def xenloop(
    costs: CostModel = DEFAULT_COSTS,
    seed: int = 0,
    fifo_order: int = 13,
    zero_copy_rx: bool = False,
    socket_bypass: bool = False,
) -> Scenario:
    """Co-resident guests with XenLoop loaded (64 KB FIFOs by default).

    ``socket_bypass=True`` loads the experimental transport-layer
    variant (the paper's future work) instead of the base module.
    """
    module = "socket_bypass" if socket_bypass else "xenloop"
    spec = topology.ClusterSpec(
        name="xenloop",
        machines=(
            topology.MachineSpec(
                name="xenhost",
                guests=tuple(
                    topology.GuestSpec(
                        name,
                        ip=ip,
                        module=module,
                        fifo_order=fifo_order,
                        zero_copy_rx=zero_copy_rx,
                    )
                    for name, ip in (("vm1", "10.0.0.1"), ("vm2", "10.0.0.2"))
                ),
            ),
        ),
    )
    return spec.build(costs, seed=seed)


@scenario(description="N co-resident guests, XenLoop loaded in all of them.")
def xenloop_mesh(
    n_guests: int = 3,
    costs: CostModel = DEFAULT_COSTS,
    seed: int = 0,
) -> Scenario:
    """``n_guests`` co-resident guests, XenLoop loaded in all of them.

    Channels form lazily and pairwise on first traffic, so a full mesh
    emerges only between guests that actually talk.  ``node_a``/``node_b``
    are the first two guests; the rest are in ``machines[0].guests``.
    """
    if n_guests < 2:
        raise ValueError("a mesh needs at least two guests")
    spec = topology.ClusterSpec(
        name="xenloop_mesh",
        machines=(
            topology.MachineSpec(
                name="xenhost",
                guests=tuple(
                    topology.GuestSpec(f"vm{i + 1}", ip=f"10.0.0.{i + 1}")
                    for i in range(n_guests)
                ),
            ),
        ),
        # warmup() only drives a<->b; the other pairs connect on their
        # own first traffic.
        expect_channels=False,
    )
    return spec.build(costs, seed=seed)


@scenario(description="Two Xen machines on a switch, one XenLoop guest each (Fig. 11).")
def migration_pair(costs: CostModel = DEFAULT_COSTS, seed: int = 0) -> Scenario:
    """Two Xen machines on a switch, one guest each, XenLoop loaded on
    both guests and discovery in both Dom0s -- the Fig. 11 topology.

    ``node_b`` (vm2, on machine B) is the guest that migrates.
    """
    spec = topology.ClusterSpec(
        name="migration_pair",
        machines=(
            topology.MachineSpec(
                name="xenA",
                nic_mac="00:02:b3:aa:00:01",
                guests=(topology.GuestSpec("vm1", ip="10.0.0.1"),),
            ),
            topology.MachineSpec(
                name="xenB",
                nic_mac="00:02:b3:bb:00:01",
                guests=(topology.GuestSpec("vm2", ip="10.0.0.2"),),
            ),
        ),
        expect_channels=False,
    )
    return spec.build(costs, seed=seed)


@scenario(description="Many XenLoop guests across two (or more) Xen machines.")
def xenloop_cluster(
    costs: CostModel = DEFAULT_COSTS,
    seed: int = 0,
    guests_per_machine: int = 4,
    n_machines: int = 2,
) -> Scenario:
    """``n_machines`` Xen machines on a switch, ``guests_per_machine``
    XenLoop guests each (default 8 guests across 2 machines).

    The endpoints are the first two guests of the first machine, so the
    measured pair is co-resident (FIFO path) while the cluster carries
    the discovery/advertisement load of every machine; churn and
    workload schedules target any guest by name (``m<i>g<j>``).
    """
    if n_machines < 1 or guests_per_machine < 1:
        raise ValueError("xenloop_cluster needs at least one machine and one guest")
    if n_machines * guests_per_machine < 2:
        raise ValueError("xenloop_cluster needs at least two guests")
    spec = topology.ClusterSpec(
        name="xenloop_cluster",
        machines=tuple(
            topology.MachineSpec(
                name=f"xen{i}",
                guests=tuple(
                    topology.GuestSpec(f"m{i}g{j}")
                    for j in range(guests_per_machine)
                ),
            )
            for i in range(n_machines)
        ),
        # expect_channels resolves automatically: warmup waits for the
        # co-resident endpoint pair; everyone else connects on first
        # traffic.
    )
    return spec.build(costs, seed=seed)
