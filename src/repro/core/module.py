"""The guest-resident XenLoop module (paper Sect. 3.1).

A self-contained "kernel module": it registers a netfilter hook beneath
the network layer and splits its work across the two planes the paper
describes separately:

* **Data plane** (this file + :mod:`repro.core.channel`): the
  per-packet dispatch in :meth:`XenLoopModule._post_routing_hook` --
  resolve the next hop's MAC through the neighbour (ARP) cache; if that
  MAC belongs to a co-resident guest with a connected channel and the
  packet fits the FIFO, copy it onto the channel (STOLEN); otherwise
  let it continue down the standard netfront/netback path (ACCEPT).
  The hook only ever *reads* the control plane's tables.
* **Control plane** (:mod:`repro.core.control`): the [guest-ID, MAC]
  mapping table fed by Dom0 discovery announcements, channel bootstrap
  and teardown, the idle reaper, and the module-unload / guest-shutdown
  / live-migration responses.  Owned by ``self.control``, a
  :class:`~repro.core.control.ControlPlane`; the module exposes
  read-only views (``mapping``, ``channels``) for the hook and for
  observers.

The module also implements :class:`~repro.core.control.LifecycleHooks`
so the control plane can notify it (and subclasses: the socket-bypass
variant attaches its stream handler in :meth:`channel_created`).

Ordering note: packets taking different paths (channel vs. standard)
can be reordered relative to each other -- a too-big datagram on the
slow path can be overtaken by a later small one through the FIFO.  The
real XenLoop has the same property; it is invisible to TCP (sequence
numbers) and permitted for UDP.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.channel import Channel, ChannelState
from repro.core.control import ControlPlane, LifecycleHooks
from repro.core.fifo import BufferPool
from repro.net.addr import MacAddr
from repro.net.ethernet import ETH_P_IP, ETH_P_XENLOOP
from repro.net.netfilter import HookPoint, Verdict
from repro.net.packet import EthHeader, Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.protocol import Announce, ConnectRequest, CreateChannel
    from repro.xen.domain import Domain

__all__ = ["XenLoopModule"]


class XenLoopModule(LifecycleHooks):
    """The self-contained guest 'kernel module' of the paper."""
    def __init__(
        self,
        guest: "Domain",
        fifo_order: int = 13,
        idle_timeout: Optional[float] = None,
        zero_copy_rx: bool = False,
        channel_budget: Optional[int] = None,
        delta_discovery: bool = False,
    ):
        """Load the module into ``guest``.

        ``fifo_order``: k, so each FIFO holds 2^k 8-byte slots (the
        paper's default channel uses 64 KB per direction = k=13).
        ``idle_timeout``: optionally tear down channels with no traffic
        for this many seconds ("conserve system resources", Sect. 3.1).
        ``zero_copy_rx``: use the receive-side zero-copy variant the
        paper evaluated and rejected (ablation only).
        ``channel_budget``: LRU cap on concurrent channels -- the
        least-recently-active connected channel is evicted (idle-expiry
        rail) when the table exceeds it, so channel count tracks the
        working set instead of the cluster size.
        ``delta_discovery``: this guest's Dom0 runs delta-mode discovery
        (RosterDelta/FullSync multicasts + WhoIs lookups): keep a sparse
        O(active-peers) roster view instead of the full-roster mapping.
        """
        if guest.stack is None or guest.netfront is None:
            raise ValueError("XenLoop needs a guest with a vif network stack")
        self.guest = guest
        self.fifo_order = fifo_order
        self.idle_timeout = idle_timeout
        self.zero_copy_rx = zero_copy_rx
        self.channel_budget = channel_budget
        self.delta_discovery = delta_discovery
        self.loaded = True

        #: the control plane: mapping/channel tables, bootstrap,
        #: teardown, idle reaping, migration response.
        self.control = ControlPlane(self)
        #: per-node staging buffers shared by all this guest's channels
        #: (waiting-list joins of scatter-gather entries; see BufferPool).
        self.staging_pool = BufferPool()

        # Statistics (data-plane dispatch counters).
        self.pkts_via_channel = 0
        self.pkts_via_standard = 0
        self.pkts_too_big = 0

        stack = guest.stack
        stack.netfilter.register(HookPoint.POST_ROUTING, self._post_routing_hook)
        stack.register_ethertype(ETH_P_XENLOOP, self._control_input)
        guest.pre_migrate_callbacks.append(self._pre_migrate)
        guest.post_migrate_callbacks.append(self._post_migrate)
        guest.shutdown_callbacks.append(self._shutdown)

        guest.spawn(self._advertise(), name="xenloop-advertise")
        if idle_timeout is not None:
            guest.spawn(self._idle_monitor(), name="xenloop-idle")

    # ------------------------------------------------------------------
    # Read-only views of the control plane's tables
    # ------------------------------------------------------------------
    @property
    def mapping(self) -> dict[MacAddr, int]:
        """MAC -> guest-ID of co-resident XenLoop-willing guests."""
        return self.control.mapping

    @property
    def channels(self) -> dict[MacAddr, Channel]:
        """MAC -> live channel endpoint."""
        return self.control.channels

    @property
    def announcements_seen(self) -> int:
        return self.control.announcements_seen

    def snapshot_state(self) -> dict:
        """Control plane, staging pool, and dispatch counters -- the
        whole per-guest module state for the snapshot manifest."""
        return {
            "loaded": self.loaded,
            "fifo_order": self.fifo_order,
            "channel_budget": self.channel_budget,
            "delta_discovery": self.delta_discovery,
            "control": self.control.snapshot_state(),
            "staging_pool": self.staging_pool.snapshot_state(),
            "pkts_via_channel": self.pkts_via_channel,
            "pkts_via_standard": self.pkts_via_standard,
            "pkts_too_big": self.pkts_too_big,
        }

    # ------------------------------------------------------------------
    # XenStore advertisement (soft-state discovery, Sect. 3.2)
    # ------------------------------------------------------------------
    def _advertise(self):
        yield from self.control.advertise()

    def _unadvertise(self):
        yield from self.control.unadvertise()

    # ------------------------------------------------------------------
    # The netfilter hook (sender context) -- the data plane
    # ------------------------------------------------------------------
    def _post_routing_hook(self, packet: Packet, dev):
        guest = self.guest
        if not self.loaded or dev is not guest.netfront.vif or packet.ip is None:
            return Verdict.ACCEPT
        # The hash-table lookup cost: everything between here and the
        # channel send is pure bookkeeping with no yield point, so on the
        # fast path the lookup is handed to send_packet as a precharge
        # (folded into its first CPU segment); the slower ACCEPT paths
        # charge it standalone as before.
        lookup = guest.costs.xenloop_lookup
        stack = guest.stack
        dst = packet.ip.dst
        if dst.in_subnet(stack.network, stack.prefix_len):
            next_hop = dst
        elif stack.gateway is not None:
            next_hop = stack.gateway
        else:
            yield guest.exec(lookup)
            return Verdict.ACCEPT
        mac = stack.arp.lookup(next_hop)
        if mac is None:
            yield guest.exec(lookup)
            return Verdict.ACCEPT  # let the standard path trigger ARP
        control = self.control
        peer_domid = control.mapping.get(mac)
        if peer_domid is None:
            yield guest.exec(lookup)
            if control.roster is not None:
                # Sparse mapping (delta mode): the miss may just mean we
                # never asked.  Query Dom0 in the background; this and
                # every packet until the answer arrives stay on the
                # bridge path, so delivery order is preserved.
                control.note_mapping_miss(mac)
            self.pkts_via_standard += 1
            return Verdict.ACCEPT
        channel = control.channels_by_domid.get(peer_domid)
        if channel is None:
            yield guest.exec(lookup)
            control.initiate_bootstrap(mac, peer_domid)
            self.pkts_via_standard += 1
            return Verdict.ACCEPT
        if channel.state is not ChannelState.CONNECTED:
            yield guest.exec(lookup)
            self.pkts_via_standard += 1
            return Verdict.ACCEPT
        if not channel.fits(packet.l3_len):
            yield guest.exec(lookup)
            self.pkts_too_big += 1
            self.pkts_via_standard += 1
            return Verdict.ACCEPT
        taken = yield from channel.send_packet(packet, precharge=lookup)
        if not taken:
            # Channel went inactive under us (peer teardown/migration).
            self.pkts_via_standard += 1
            return Verdict.ACCEPT
        self.pkts_via_channel += 1
        self._last_traffic = guest.sim.now
        return Verdict.STOLEN

    # ------------------------------------------------------------------
    # Control-plane delegates (the wire-facing surface stays on the
    # module: send_control is monkeypatch-friendly, the _handle_*
    # methods are the documented per-message entry points)
    # ------------------------------------------------------------------
    def send_control(self, dst_mac: MacAddr, msg):
        """Send an out-of-band XenLoop-type control frame via the standard
        netfront path (generator).

        This is the fault-injection tap point for control-frame loss,
        delay, and duplication (see :mod:`repro.faults`): with no plan
        installed the frame goes out exactly as before."""
        guest = self.guest
        repeats = 1
        plan = getattr(guest.sim, "fault_plan", None)
        if plan is not None and plan.has_control_rules:
            deliver, delay, dup = plan.on_control(guest.name, type(msg).__name__)
            if not deliver:
                return
            if delay > 0.0:
                yield guest.sim.timeout(delay)
            repeats += dup
        vif = guest.netfront.vif
        payload = msg.to_bytes()
        for _ in range(repeats):
            yield from guest.stack.link_output(vif, dst_mac, ETH_P_XENLOOP, payload)

    def _control_input(self, packet: Packet, dev):
        yield from self.control.control_input(packet, dev)

    def _handle_announce(self, msg: "Announce") -> None:
        self.control.handle_announce(msg)

    def _handle_connect_request(self, msg: "ConnectRequest") -> None:
        self.control.handle_connect_request(msg)

    def _handle_create_channel(self, msg: "CreateChannel", src_mac: MacAddr) -> None:
        self.control.handle_create_channel(msg, src_mac)

    def _initiate_bootstrap(self, mac: MacAddr, peer_domid: int) -> None:
        self.control.initiate_bootstrap(mac, peer_domid)

    # ------------------------------------------------------------------
    # LifecycleHooks (control plane -> module notifications)
    # ------------------------------------------------------------------
    def channel_closed(self, channel: Channel) -> None:
        """Channel callback: drop a closed channel from the table."""
        self.control.channel_closed(channel)

    def resend_via_standard_path(self, l3_bytes: bytes) -> None:
        """Re-send a saved packet over netfront (after teardown/migration)."""
        packet = Packet.from_l3_bytes(l3_bytes)
        guest = self.guest

        def _resend():
            stack = guest.stack
            mac = stack.arp.lookup(packet.ip.dst)
            if mac is None:
                mac = yield from stack.arp.resolve(packet.ip.dst)
                if mac is None:
                    return
            vif = guest.netfront.vif
            packet.eth = EthHeader(dst=mac, src=vif.mac, ethertype=ETH_P_IP)
            yield guest.exec(vif.tx_cost(packet))
            yield vif.queue_xmit(packet)

        guest.spawn(_resend(), name="xl-resend")

    # ------------------------------------------------------------------
    # Lifecycle: unload, shutdown, migration (Sect. 3.3-3.4)
    # ------------------------------------------------------------------
    def unload(self):
        """Remove the module (generator): forestall new connections, tear
        down all channels, unregister hooks."""
        if not self.loaded:
            return
        self.loaded = False
        yield from self.control.unadvertise()
        for channel in list(self.control.channels.values()):
            saved = yield from channel.teardown()
            for data in saved:
                self.resend_via_standard_path(data)
        guest = self.guest
        guest.stack.netfilter.unregister(HookPoint.POST_ROUTING, self._post_routing_hook)
        guest.stack.unregister_ethertype(ETH_P_XENLOOP)
        if guest.stack.transport_intercept is self:
            guest.stack.transport_intercept = None
        if self._pre_migrate in guest.pre_migrate_callbacks:
            guest.pre_migrate_callbacks.remove(self._pre_migrate)
        if self._post_migrate in guest.post_migrate_callbacks:
            guest.post_migrate_callbacks.remove(self._post_migrate)
        if self._shutdown in guest.shutdown_callbacks:
            guest.shutdown_callbacks.remove(self._shutdown)

    def _shutdown(self):
        yield from self.control.shutdown()

    def _pre_migrate(self):
        yield from self.control.pre_migrate()

    def _post_migrate(self):
        yield from self.control.post_migrate()

    # ------------------------------------------------------------------
    # Optional idle-channel reaper
    # ------------------------------------------------------------------
    _last_traffic = 0.0

    def _idle_monitor(self):
        yield from self.control.idle_monitor()

    def stats(self) -> dict[str, int]:
        """Snapshot of per-module packet and channel counters."""
        return {
            "via_channel": self.pkts_via_channel,
            "via_standard": self.pkts_via_standard,
            "too_big": self.pkts_too_big,
            "channels": len(self.control.channels),
            "announcements": self.control.announcements_seen,
            "whois_sent": self.control.whois_sent,
            "budget_evictions": self.control.budget_evictions,
        }
