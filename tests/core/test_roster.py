"""RosterView: epoch tracking, sparse footprint, convergence.

The property tests are the satellite's convergence claim: ANY
interleaving of joins, leaves, identity reuse, and dropped/duplicated
delta frames converges to the scanner's roster after one full-sync
epoch -- a mirroring view converges exactly; a sparse view converges
on every peer it tracks and never resurrects one that left.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocol import FullSync, RosterDelta
from repro.core.roster import RosterView
from repro.net.addr import MacAddr

OWN = MacAddr("00:16:3e:00:00:99")


def _mac(i: int) -> MacAddr:
    return MacAddr(0x00163E000000 + i)


class TestEpochs:
    def test_in_order_deltas_apply(self):
        view = RosterView(OWN, track_all=True)
        assert view.apply_delta(RosterDelta(0, 1, [(4, _mac(4))], [])) is not None
        assert view.apply_delta(RosterDelta(0, 2, [(5, _mac(5))], [])) is not None
        assert view.entries == {_mac(4): 4, _mac(5): 5}
        assert view.epoch == 2 and not view.desynced

    def test_duplicate_delta_ignored(self):
        view = RosterView(OWN, track_all=True)
        frame = RosterDelta(0, 1, [(4, _mac(4))], [])
        assert view.apply_delta(frame) is not None
        assert view.apply_delta(frame) is None  # receive-side dup fault
        assert view.deltas_ignored == 1
        assert view.entries == {_mac(4): 4}

    def test_gap_desyncs_until_full_sync(self):
        view = RosterView(OWN, track_all=True)
        view.apply_delta(RosterDelta(0, 1, [(4, _mac(4))], []))
        assert view.apply_delta(RosterDelta(0, 3, [(5, _mac(5))], [])) is None
        assert view.desynced and view.deltas_gapped == 1
        # even the "right" next epoch is refused while desynced
        assert view.apply_delta(RosterDelta(0, 4, [(6, _mac(6))], [])) is None
        changes = view.apply_full_sync(FullSync(0, 4, [(6, _mac(6))]))
        assert changes is not None
        assert not view.desynced and view.epoch == 4
        assert view.entries == {_mac(6): 6}

    def test_stale_full_sync_ignored(self):
        view = RosterView(OWN, track_all=True)
        view.apply_full_sync(FullSync(0, 5, [(4, _mac(4))]))
        assert view.apply_full_sync(FullSync(0, 3, [])) is None
        assert view.entries == {_mac(4): 4}

    def test_own_mac_never_tracked(self):
        view = RosterView(OWN, track_all=True)
        view.apply_delta(RosterDelta(0, 1, [(9, OWN), (4, _mac(4))], []))
        view.track(OWN, 9)
        assert OWN not in view.entries


class TestSparseMode:
    def test_untracked_churn_flows_through(self):
        view = RosterView(OWN)  # sparse: nothing materialized yet
        changes = view.apply_delta(RosterDelta(0, 1, [(4, _mac(4))], []))
        assert changes.joins == [] and view.entries == {}
        assert view.epoch == 1  # the epoch still advances

    def test_tracked_peer_leave_reported(self):
        view = RosterView(OWN)
        view.track(_mac(4), 4)
        changes = view.apply_delta(RosterDelta(0, 1, [], [(4, _mac(4))]))
        assert changes.leaves == [_mac(4)]
        assert _mac(4) not in view.entries

    def test_domid_change_is_leave_plus_join(self):
        view = RosterView(OWN)
        view.track(_mac(4), 4)
        changes = view.apply_delta(RosterDelta(0, 1, [(7, _mac(4))], []))
        assert changes.domid_changed == [_mac(4)]
        assert changes.leaves == [_mac(4)]
        assert changes.joins == [(7, _mac(4))]
        assert view.entries[_mac(4)] == 7

    def test_join_clears_negative_cache(self):
        view = RosterView(OWN)
        view.note_negative(_mac(4))
        view.apply_delta(RosterDelta(0, 1, [(4, _mac(4))], []))
        assert _mac(4) not in view.negative

    def test_full_sync_clears_negative_cache(self):
        view = RosterView(OWN)
        view.note_negative(_mac(4))
        view.apply_full_sync(FullSync(0, 1, []))
        assert view.negative == set()

    def test_full_sync_prunes_vanished_tracked_peer(self):
        view = RosterView(OWN)
        view.track(_mac(4), 4)
        changes = view.apply_full_sync(FullSync(0, 2, [(5, _mac(5))]))
        assert changes.leaves == [_mac(4)]
        assert view.entries == {}


# One scripted step of cluster churn: (op, guest-index, drop, dup).
_steps = st.lists(
    st.tuples(
        st.sampled_from(["join", "leave", "rejoin"]),
        st.integers(min_value=0, max_value=7),
        st.booleans(),  # drop this step's delta frame
        st.booleans(),  # duplicate this step's delta frame
    ),
    max_size=40,
)


def _run_interleaving(steps, views):
    """Drive a scanner through ``steps``, delivering each changed scan's
    delta to every view (unless dropped); returns the final roster and
    the scanner's epoch."""
    roster: dict[MacAddr, int] = {}
    next_domid = 100
    epoch = 0
    for op, idx, drop, dup in steps:
        mac = _mac(idx)
        joins, leaves = [], []
        if op == "join" and mac not in roster:
            roster[mac] = next_domid = next_domid + 1
            joins.append((roster[mac], mac))
        elif op == "leave" and mac in roster:
            leaves.append((roster.pop(mac), mac))
        elif op == "rejoin" and mac in roster:
            # crash + restart reusing the MAC: same key, fresh domid
            roster[mac] = next_domid = next_domid + 1
            joins.append((roster[mac], mac))
        if not joins and not leaves:
            continue  # quiescent scan: no frame, no epoch bump
        epoch += 1
        frame = RosterDelta(0, epoch, joins, leaves)
        if drop:
            continue
        for view in views:
            view.apply_delta(frame)
            if dup:
                view.apply_delta(frame)
    return roster, epoch


class TestConvergence:
    @settings(deadline=None)
    @given(steps=_steps)
    def test_mirror_converges_after_one_full_sync(self, steps):
        view = RosterView(OWN, track_all=True)
        roster, epoch = _run_interleaving(steps, [view])
        view.apply_full_sync(
            FullSync(0, epoch, [(d, m) for m, d in roster.items()])
        )
        assert view.entries == {m: d for m, d in roster.items() if m != OWN}
        assert view.epoch == epoch and not view.desynced

    @settings(deadline=None)
    @given(steps=_steps, tracked=st.sets(st.integers(0, 7), max_size=4))
    def test_sparse_view_is_consistent_subset(self, steps, tracked):
        """A sparse view that materialized some peers up front ends, after
        the full sync, as an exact subset of the scanner's roster: right
        domid for every entry it still holds, no entry for peers that
        left, regardless of which deltas were dropped in between."""
        view = RosterView(OWN)
        for idx in tracked:
            view.track(_mac(idx), 0)  # domid 0: pre-churn placeholder
        roster, epoch = _run_interleaving(steps, [view])
        view.apply_full_sync(
            FullSync(0, epoch, [(d, m) for m, d in roster.items()])
        )
        assert set(view.entries) <= set(roster)
        for mac, domid in view.entries.items():
            assert roster[mac] == domid
        assert not view.desynced
