"""The fault-matrix sweep: {frame type x handshake phase x fault kind}.

The recovery claims of Sect. 3.2-3.4 (handshake retries, ack-timeout
abort, netfront fallback, soft-state pruning after a peer dies) are
exercised here as a matrix of small scenarios: each :class:`MatrixCell`
builds a fresh two-guest cluster, binds a seeded
:class:`~repro.faults.FaultPlan` for one fault, drives UDP traffic
through the disruption, and then checks the convergence invariants --
every surviving channel endpoint is CONNECTED (or cleanly gone from the
table), no grant entries, event-channel ports, staging-pool buffers,
ARP waiters, or reassembly buffers leak, and (where the cell expects
it) the traffic completed anyway via the standard path.

``run_fault_matrix`` runs every cell and returns result dicts that
:func:`repro.report.format_fault_matrix` renders; the CLI exposes it as
``python -m repro faults`` and CI runs it via ``make fault-matrix``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import faults, topology
from repro.calibration import DEFAULT_COSTS, CostModel
from repro.core.channel import Channel
from repro.scenarios.base import Scenario
from repro.scenarios.registry import scenario

__all__ = [
    "MatrixCell",
    "fault_matrix",
    "matrix_cells",
    "pair_snapshot",
    "run_cell",
    "run_cell_forked",
    "run_cell_sharded",
    "run_fault_matrix",
]

#: cost overrides that make one cell fast: frequent announcements (the
#: connector's retry clock) and a short ack timeout.
MATRIX_COSTS = DEFAULT_COSTS.replace(discovery_period=0.2, bootstrap_timeout=0.01)

#: UDP traffic shape per cell: ``N_DATAGRAMS`` sends spaced ``GAP``
#: seconds apart span several discovery periods, so every fault window
#: (bootstrap, steady state, post-recovery) sees traffic.
N_DATAGRAMS = 30
GAP = 0.05
PORT = 7200
PAYLOAD = bytes(range(256))
SETTLE = 2.0


@dataclass(frozen=True)
class MatrixCell:
    """One swept point: a named fault against the two-guest pair.

    ``expect_traffic`` asserts every datagram arrived (channel or
    netfront fallback); ``min_frac`` relaxes that for cells where some
    in-flight loss is legitimate (migration downtime).  ``machines``
    is 2 for cells that need a second Xen machine (forced migration).
    """

    name: str
    rules: tuple[faults.FaultRule, ...]
    expect_traffic: bool = True
    min_frac: float = 1.0
    machines: int = 1
    #: send vm2 -> vm1 instead: the larger-domid guest then initiates
    #: the bootstrap, which is the only path that emits ConnectRequest.
    reverse: bool = False
    #: pin vm2's MAC in its spec (a fixed ``vif mac=`` config line): a
    #: crash + restart then re-advertises the SAME MAC under a fresh
    #: domid, exercising the identity-refresh path instead of the
    #: vanished-peer prune.
    pin_mac: bool = False

    def __post_init__(self):
        object.__setattr__(self, "rules", tuple(self.rules))


def matrix_cells() -> list[MatrixCell]:
    """The full sweep: control frames x {drop, delay, dup}, notify
    loss, map failure, crash x {bootstrapping, connected}, crash with
    restart, forced migration."""
    R = faults.FaultRule
    cells: list[MatrixCell] = []
    # Control-frame faults by message type.  vm1 (smaller domid) is the
    # listener, vm2 the connector; Announce rules match the recipient.
    for msg in ("ConnectRequest", "CreateChannel", "ChannelAck", "Announce"):
        rev = msg == "ConnectRequest"
        cells.append(
            MatrixCell(
                f"drop:{msg}", (R(faults.CONTROL_DROP, message=msg),), reverse=rev
            )
        )
        cells.append(
            MatrixCell(
                f"delay:{msg}",
                (R(faults.CONTROL_DELAY, message=msg, delay=0.03),),
                reverse=rev,
            )
        )
        cells.append(
            MatrixCell(
                f"dup:{msg}", (R(faults.CONTROL_DUP, message=msg),), reverse=rev
            )
        )
    # Drop EVERY CreateChannel: the listener must burn its retry ladder
    # and abort cleanly; traffic still completes via netfront.
    cells.append(
        MatrixCell(
            "drop_all:CreateChannel",
            (R(faults.CONTROL_DROP, message="CreateChannel", times=None),),
        )
    )
    # Lost event-channel notifies mid-stream on the connected channel
    # (skip past the bootstrap-era netfront ring wakeups, where a lost
    # UDP datagram is ordinary UDP loss, not a XenLoop recovery): the
    # drain loop's pending re-check and the next data notify must
    # recover the stuck FIFO entries.
    cells.append(
        MatrixCell("notify_drop", (R(faults.NOTIFY_DROP, times=3, skip=35),))
    )
    # Injected map_grant failure: the connector aborts, the listener's
    # retry reconnects on a fresh channel.
    cells.append(MatrixCell("map_fail", (R(faults.MAP_FAIL, times=1),)))
    # Guest crash at a chosen handshake phase (no shutdown callbacks).
    cells.append(
        MatrixCell(
            "crash:bootstrapping",
            (R(faults.CRASH, guest="vm2", phase="bootstrapping"),),
            expect_traffic=False,
        )
    )
    cells.append(
        MatrixCell(
            "crash:connected",
            (R(faults.CRASH, guest="vm2", phase="connected", delay=0.3),),
            expect_traffic=False,
        )
    )
    cells.append(
        MatrixCell(
            "crash_restart:connected",
            (
                R(
                    faults.CRASH,
                    guest="vm2",
                    phase="connected",
                    delay=0.3,
                    restart_after=0.3,
                ),
            ),
            expect_traffic=False,
        )
    )
    # The same crash + restart, but vm2's spec pins its MAC: the new
    # incarnation re-advertises the SAME MAC under a changed domid, and
    # vm1 must refresh the stale mapping in place (tearing down the
    # dead channel) rather than keep routing to the old domid.
    cells.append(
        MatrixCell(
            "crash_restart_same_mac:connected",
            (
                R(
                    faults.CRASH,
                    guest="vm2",
                    phase="connected",
                    delay=0.3,
                    restart_after=0.3,
                ),
            ),
            expect_traffic=False,
            pin_mac=True,
        )
    )
    # Forced live migration mid-traffic (needs a second machine).
    cells.append(
        MatrixCell(
            "migrate:connected",
            (
                R(
                    faults.MIGRATE,
                    guest="vm2",
                    phase="connected",
                    to_machine="xenB",
                    delay=0.3,
                ),
            ),
            min_frac=0.5,
            machines=2,
        )
    )
    return cells


def _pair_spec(machines: int = 1, pin_mac: bool = False) -> topology.ClusterSpec:
    """Two XenLoop guests on one machine (plus an optional empty second
    machine as a migration target, with its own Dom0 discovery).

    ``pin_mac`` fixes vm2's MAC in its spec (high in the Xen OUI, far
    above anything the auto-allocator hands out), so a restart reuses
    it instead of minting a fresh identity.
    """
    mspecs = [
        topology.MachineSpec(
            name="xenA",
            guests=(
                topology.GuestSpec("vm1", ip="10.0.0.1"),
                topology.GuestSpec(
                    "vm2",
                    ip="10.0.0.2",
                    mac="00:16:3e:ff:00:02" if pin_mac else None,
                ),
            ),
        )
    ]
    if machines > 1:
        mspecs.append(topology.MachineSpec(name="xenB", discovery=True))
    return topology.ClusterSpec(
        name="fault_matrix",
        machines=tuple(mspecs),
        expect_channels=False,
    )


def _build_pair(
    costs: CostModel, seed: int, machines: int = 1, pin_mac: bool = False
) -> topology.Cluster:
    return _pair_spec(machines, pin_mac=pin_mac).build(costs, seed=seed)


# ---------------------------------------------------------------------------
# Leak and convergence checks
# ---------------------------------------------------------------------------

def _check_invariants(cluster: topology.Cluster, received: int, sent: int, cell: MatrixCell) -> list[str]:
    """Every violated invariant as a human-readable string (empty = pass)."""
    problems: list[str] = []
    alive = {n: g for n, g in cluster.guests.items() if g.alive}

    # Channel tables converged: after unload every table must be empty
    # (unload tears everything down; a lingering entry means a channel
    # ended neither CONNECTED-then-closed nor cleanly FAILED).
    for name, module in cluster.modules.items():
        if name not in alive:
            continue
        for mac, channel in module.channels.items():
            problems.append(f"{name}: channel to {mac} still {channel.state.value}")
        if module.staging_pool.outstanding:
            problems.append(
                f"{name}: {module.staging_pool.outstanding} staging buffers leaked"
            )

    for machine in cluster.machines:
        hyper = getattr(machine, "hypervisor", None)
        if hyper is None:
            continue
        dom0 = machine.dom0.domid
        # Grant leaks: entries granted guest-to-guest are XenLoop's
        # (netfront/netback grants target Dom0).
        for domid, table in hyper.grant_tables.items():
            stale = [
                g for g, e in table._entries.items() if e.granted_to != dom0
            ]
            if stale:
                problems.append(
                    f"{machine.name}/dom{domid}: {len(stale)} leaked grant entries"
                )
        # Event-channel port leaks: any port whose handler is bound to a
        # Channel survived its channel's teardown.
        for port in hyper.evtchn._ports.values():
            owner = getattr(port.handler, "__self__", None)
            if isinstance(owner, Channel):
                problems.append(f"{machine.name}: leaked channel port {port!r}")

    for name, guest in alive.items():
        waiters = guest.stack.arp._waiters
        if waiters:
            problems.append(f"{name}: {len(waiters)} leaked ARP waiter lists")
        pending = guest.stack.ipv4.reassembler.pending
        if pending:
            problems.append(f"{name}: {pending} leaked reassembly buffers")

    if cell.expect_traffic and received < int(sent * cell.min_frac):
        problems.append(f"traffic lost: {received}/{sent} datagrams delivered")
    return problems


def _exercise_cell(cluster: topology.Cluster, cell: MatrixCell) -> int:
    """Drive, settle, and unload one cell's traffic on ``cluster``;
    returns the number of datagrams the server received."""
    sim = cluster.sim

    src, dst_ip = cluster.node_a, cluster.ip_b
    dst = cluster.node_b
    if cell.reverse:
        src, dst, dst_ip = dst, src, cluster.ip_a

    server = dst.stack.udp_socket(PORT)
    received: list[bytes] = []

    def srv():
        while True:
            data, _ = yield from server.recvfrom()
            received.append(data)

    sim.process(srv(), name="fault-server")

    client = src.stack.udp_socket()

    def drive():
        for _ in range(N_DATAGRAMS):
            yield from client.sendto(PAYLOAD, (dst_ip, PORT))
            yield sim.timeout(GAP)

    driver = sim.process(drive(), name="fault-traffic")
    sim.run_until_complete(driver, timeout=60.0)
    sim.run(until=sim.now + SETTLE)

    # Unload every module still backed by a live guest, so the teardown
    # paths under test run and the leak checks below are meaningful.
    for name, module in list(cluster.modules.items()):
        guest = cluster.guests.get(name)
        if guest is None or not guest.alive or not module.loaded:
            continue
        proc = sim.process(module.unload(), name=f"unload-{name}")
        sim.run_until_complete(proc, timeout=30.0)
    sim.run(until=sim.now + 0.5)
    return len(received)


def _run_cell_on(cluster: topology.Cluster, cell: MatrixCell, seed: int) -> dict:
    """Fault, drive, settle, unload, check one cell on a pre-built pair.

    The plan binds *after* the build, so a cell runs identically on a
    cold build and on a fork of a post-build snapshot -- that is the
    warm-start equivalence the fork path relies on.
    """
    plan = faults.FaultPlan(cell.rules, seed=seed).bind(cluster)
    received = _exercise_cell(cluster, cell)

    problems = _check_invariants(cluster, received, N_DATAGRAMS, cell)
    snap = plan.snapshot()
    return {
        "cell": cell.name,
        "ok": not problems,
        "detail": "; ".join(problems),
        "injected": snap["injected"],
        "recovered": snap["recovered"],
        "degraded": snap["degraded"],
        "received": received,
        "sent": N_DATAGRAMS,
        # Calendar entries processed: two equal results mean the two
        # runs walked the same event stream (the determinism check).
        "events": cluster.sim.event_count,
    }


def run_cell(cell: MatrixCell, costs: CostModel = MATRIX_COSTS, seed: int = 0) -> dict:
    """Build, fault, drive, settle, unload, check one cell (cold)."""
    cluster = _build_pair(costs, seed, machines=cell.machines, pin_mac=cell.pin_mac)
    return _run_cell_on(cluster, cell, seed)


def pair_snapshot(
    costs: CostModel = MATRIX_COSTS,
    seed: int = 0,
    machines: int = 1,
    pin_mac: bool = False,
):
    """Capture the post-build pair as a forkable, recipe-backed
    :class:`~repro.sim.snapshot.SimSnapshot` (the warm-start image every
    cell with the same ``(machines, pin_mac)`` build forks from)."""
    from repro.sim.snapshot import SimSnapshot, fault_pair_recipe

    recipe = fault_pair_recipe(
        costs=costs, seed=seed, machines=machines, pin_mac=pin_mac
    )
    cluster = _build_pair(costs, seed, machines=machines, pin_mac=pin_mac)
    return SimSnapshot.capture(
        cluster,
        recipe=recipe,
        label=f"fault-pair machines={machines} pin_mac={pin_mac} seed={seed}",
    )


def run_cell_forked(cell: MatrixCell, snapshot, seed: int = 0) -> dict:
    """Run one cell against a fork of a :func:`pair_snapshot`.

    The child is a copy-on-write image of the already-built pair, so the
    per-cell build cost is paid once per snapshot instead of once per
    cell; results are bit-identical to :func:`run_cell` (same seed, same
    event stream) and carry ``warm_fork: True``.
    """
    result = snapshot.fork(lambda cluster: _run_cell_on(cluster, cell, seed))
    result["warm_fork"] = True
    return result


#: sim-time horizon the guestless peer shard idles out to under the
#: sharded matrix.  Comfortably past the traffic shard's completion
#: (~4.5 s with fault delays); cheap to overshoot -- the traffic shard's
#: FIN lifts the peer's horizon to infinity and it fast-forwards.
_SHARD_HORIZON = N_DATAGRAMS * GAP + SETTLE + 4.5


def run_cell_sharded(cell: MatrixCell, costs: CostModel = MATRIX_COSTS, seed: int = 0) -> dict:
    """One cell under the 2-shard PDES mode of :mod:`repro.sim.pdes`.

    The pair topology always gets the second (guestless, discovery-only)
    machine here, and the two machines run as separate shard processes:
    fault injection, recovery, and the leak invariants are exercised
    with the conservative null-message protocol between them.  The
    traffic shard (the one holding vm1/vm2) runs the same drive /
    settle / unload sequence as :func:`run_cell`; the peer shard idles
    its Dom0 discovery out to a fixed horizon and then runs the same
    invariant checks on its side.

    ``migrate:*`` cells fall back to :func:`run_cell`: live migration
    across shard processes would move a guest between simulators, which
    the sharded mode rejects by design.
    """
    from repro.sim import pdes

    if any(rule.kind == faults.MIGRATE for rule in cell.rules):
        result = run_cell(cell, costs, seed=seed)
        result["shards"] = 1
        result["sharded_fallback"] = True
        result["detail"] = (
            result["detail"] or "cross-shard migration unsupported; ran unsharded"
        )
        return result

    spec = _pair_spec(machines=2, pin_mac=cell.pin_mac)

    def script(cluster: topology.Cluster) -> dict:
        if "vm1" in cluster.guests:
            received = _exercise_cell(cluster, cell)
            problems = _check_invariants(cluster, received, N_DATAGRAMS, cell)
            return {"received": received, "problems": problems}
        # Guestless peer shard: keep Dom0 discovery alive (and the
        # null-message protocol promising) past the traffic shard's
        # lifetime, then run the leak checks on this side too.
        cluster.sim.run(until=_SHARD_HORIZON)
        problems = _check_invariants(cluster, 0, 0, cell)
        return {"received": None, "problems": problems}

    sharded = pdes.run_sharded(
        spec,
        shards=2,
        costs=costs,
        seed=seed,
        script=script,
        fault_rules=cell.rules,
        fault_seed=seed,
    )
    problems = [p for res in sharded.results for p in res["problems"]]
    received = next(
        res["received"] for res in sharded.results if res["received"] is not None
    )
    snap = sharded.stats.get("faults") or {"injected": {}, "recovered": {}, "degraded": {}}
    return {
        "cell": cell.name,
        "ok": not problems,
        "detail": "; ".join(problems),
        "injected": snap["injected"],
        "recovered": snap["recovered"],
        "degraded": snap["degraded"],
        "received": received,
        "sent": N_DATAGRAMS,
        "events": sharded.stats["events"],
        "shards": 2,
    }


def run_fault_matrix(
    costs: CostModel = MATRIX_COSTS,
    seed: int = 0,
    shards: int = 1,
    warm: bool = True,
) -> list[dict]:
    """Run every cell of the sweep; returns one result dict per cell.

    The default (``shards=1, warm=True``) builds the two-guest pair
    ONCE per distinct ``machines`` count, snapshots it, and forks every
    cell from the warm image (:func:`run_cell_forked`) -- results are
    bit-identical to the cold path, the build cost is amortised across
    the sweep.  ``warm=False`` (or a platform without ``os.fork``)
    restores the classic cold build per cell; ``shards=2`` runs each
    cell under the two-shard PDES mode (see :func:`run_cell_sharded`),
    where each shard rebuilds its own slice and warm forking does not
    apply.
    """
    if shards > 1:
        return [run_cell_sharded(cell, costs, seed=seed) for cell in matrix_cells()]

    from repro.sim.snapshot import HAS_FORK

    if not (warm and HAS_FORK):
        return [run_cell(cell, costs, seed=seed) for cell in matrix_cells()]

    snapshots: dict[tuple, object] = {}
    results = []
    for cell in matrix_cells():
        key = (cell.machines, cell.pin_mac)
        snap = snapshots.get(key)
        if snap is None:
            snap = snapshots[key] = pair_snapshot(
                costs, seed=seed, machines=cell.machines, pin_mac=cell.pin_mac
            )
        results.append(run_cell_forked(cell, snap, seed=seed))
    return results


@scenario(description="Two XenLoop guests with a recoverable fault plan bound.")
def fault_matrix(costs: CostModel = DEFAULT_COSTS, seed: int = 0) -> Scenario:
    """The fault-injection demo topology: the two-guest xenloop pair
    with a seeded plan that drops the first CREATE_CHANNEL frame -- the
    handshake recovers through the listener's retry ladder.  The full
    sweep lives in :func:`run_fault_matrix`."""
    cluster = _build_pair(costs, seed)
    faults.FaultPlan(
        (faults.FaultRule(faults.CONTROL_DROP, message="CreateChannel"),),
        seed=seed,
    ).bind(cluster)
    return cluster
