"""Point-to-point message passing over simulated TCP (MPICH ch3:sock
analogue).

Wire format per message: 8-byte header (4-byte magic-ish tag + 4-byte
length, network order) followed by the payload.  Blocking semantics
match MPI_Send/MPI_Recv for the eager protocol: ``send`` returns once
the bytes are buffered by TCP; ``recv`` returns exactly one message.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.tcp import TcpConnection
    from repro.scenarios import Scenario

__all__ = ["MpiConnection", "mpi_connect_pair"]

_HDR = struct.Struct("!II")
_MAGIC = 0x4D504900  # "MPI\0"


class MpiError(Exception):
    """Malformed message framing on the MPI connection."""
    pass


class MpiConnection:
    """One rank's connection to a single peer."""

    def __init__(self, conn: "TcpConnection"):
        self.conn = conn
        self.msgs_sent = 0
        self.msgs_received = 0

    def send(self, data: bytes):
        """Blocking send of one message (generator)."""
        yield from self.conn.send(_HDR.pack(_MAGIC, len(data)) + data)
        self.msgs_sent += 1

    def recv(self):
        """Blocking receive of one message (generator).  Returns bytes."""
        header = yield from self.conn.recv_exactly(_HDR.size)
        magic, length = _HDR.unpack(header)
        if magic != _MAGIC:
            raise MpiError(f"bad message magic {magic:#x}")
        if length:
            data = yield from self.conn.recv_exactly(length)
        else:
            data = b""
        self.msgs_received += 1
        return data

    def close(self):
        """Close the underlying TCP connection (generator)."""
        yield from self.conn.close()


def mpi_connect_pair(scenario: "Scenario", port: int = 9099):
    """Establish rank0<->rank1 connections (generator helpers).

    Returns two generator functions suitable for driving from two
    processes; usage::

        store = {}
        sim.process(_accept_side(...))  # see workloads.netpipe for a
        sim.process(_connect_side(...)) # complete example

    Most callers use :func:`repro.workloads.netpipe.run` instead of
    calling this directly.
    """
    listener = scenario.node_b.stack.tcp_listen(port)

    def rank1():
        conn = yield from listener.accept()
        listener.close()
        return MpiConnection(conn)

    def rank0():
        conn = yield from scenario.node_a.stack.tcp_connect((scenario.ip_b, port))
        return MpiConnection(conn)

    return rank0, rank1
