"""Lazy wire-format caching: byte-exactness, invalidation, laziness.

The zero-copy data path must be invisible at the byte level: a packet
received lazily (raw L3 view kept, body parsed on first access) must
serialize to exactly the bytes an eagerly-built packet produces, and
any field mutation after caching must invalidate the cached wire form.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import report, trace
from repro.net.addr import IPv4Addr
from repro.net.ethernet import IPPROTO_TCP, IPPROTO_UDP
from repro.net.packet import (
    IPv4Header,
    Packet,
    TcpHeader,
    UdpHeader,
    WIRE_STATS,
)
from repro.sim.engine import Simulator


def make_udp_packet(payload=b"x" * 64, sport=1234, dport=5678, ident=7):
    l4 = UdpHeader(sport, dport, UdpHeader.HEADER_LEN + len(payload))
    ip = IPv4Header(
        src=IPv4Addr("10.0.0.1"),
        dst=IPv4Addr("10.0.0.2"),
        proto=IPPROTO_UDP,
        ident=ident,
    )
    packet = Packet(payload=payload, l4=l4, ip=ip)
    packet.ip.total_length = packet.l3_len
    return packet


def make_fragment(payload=b"f" * 48, frag_offset=8, more=True, ident=9):
    ip = IPv4Header(
        src=IPv4Addr("10.0.0.1"),
        dst=IPv4Addr("10.0.0.2"),
        proto=IPPROTO_UDP,
        ident=ident,
        frag_offset=frag_offset,
        more_frags=more,
    )
    packet = Packet(payload=payload, ip=ip)
    packet.ip.total_length = packet.l3_len
    return packet


def make_tcp_segment(payload, seq=1000):
    # A GSO super-segment is just a TCP packet whose payload exceeds the
    # MTU; the wire format is identical, only the length differs.
    l4 = TcpHeader(40000, 80, seq=seq, ack=55, window=8192)
    ip = IPv4Header(
        src=IPv4Addr("10.0.0.3"),
        dst=IPv4Addr("10.0.0.4"),
        proto=IPPROTO_TCP,
        ident=3,
    )
    packet = Packet(payload=payload, l4=l4, ip=ip)
    packet.ip.total_length = packet.l3_len
    return packet


class TestLazyEagerEquivalence:
    def test_udp_roundtrip_byte_exact(self):
        eager = make_udp_packet()
        wire = eager.to_l3_bytes()
        lazy = Packet.from_l3_bytes(wire)
        assert lazy.to_l3_bytes() == wire
        # Field access parses the body and must see the same values.
        assert lazy.l4.dport == 5678
        assert lazy.payload == b"x" * 64
        # Read-only parse keeps the cached wire form valid.
        assert lazy.to_l3_bytes() == wire

    def test_parse_is_deferred_until_field_access(self):
        wire = make_udp_packet().to_l3_bytes()
        before = WIRE_STATS.snapshot()
        lazy = Packet.from_l3_bytes(wire)
        assert WIRE_STATS.lazy_l4_parses == before["lazy_l4_parses"]
        # Size accessors must not force the parse (forwarding hops only
        # need lengths).
        assert lazy.l3_len == len(wire)
        assert WIRE_STATS.lazy_l4_parses == before["lazy_l4_parses"]
        lazy.l4  # first body access parses
        assert WIRE_STATS.lazy_l4_parses == before["lazy_l4_parses"] + 1
        lazy.payload  # second access does not re-parse
        assert WIRE_STATS.lazy_l4_parses == before["lazy_l4_parses"] + 1

    def test_fragment_roundtrip_no_l4(self):
        frag = make_fragment()
        wire = frag.to_l3_bytes()
        lazy = Packet.from_l3_bytes(wire)
        # Fragments never grow a transport header on parse.
        assert lazy.l4 is None
        assert lazy.payload == b"f" * 48
        assert lazy.to_l3_bytes() == wire

    def test_gso_segment_roundtrip(self):
        payload = bytes(range(256)) * 24  # 6 KB > MTU
        seg = make_tcp_segment(payload)
        wire = seg.to_l3_bytes()
        lazy = Packet.from_l3_bytes(wire)
        assert isinstance(lazy.l4, TcpHeader)
        assert lazy.l4.seq == 1000
        assert lazy.payload == payload
        assert lazy.to_l3_bytes() == wire

    def test_memoryview_input_materialized_once(self):
        wire = make_udp_packet().to_l3_bytes()
        lazy = Packet.from_l3_bytes(memoryview(wire))
        assert type(lazy.to_l3_bytes()) is bytes
        assert lazy.to_l3_bytes() == wire

    @given(
        payload=st.binary(min_size=0, max_size=512),
        sport=st.integers(1, 0xFFFF),
        dport=st.integers(1, 0xFFFF),
        ident=st.integers(1, 0xFFFF),
    )
    def test_property_lazy_equals_eager(self, payload, sport, dport, ident):
        eager = make_udp_packet(payload, sport, dport, ident)
        wire = eager.to_l3_bytes()
        lazy = Packet.from_l3_bytes(wire)
        assert lazy.to_l3_bytes() == wire
        assert lazy.l4.sport == sport
        assert lazy.l4.dport == dport
        assert lazy.payload == payload
        assert lazy.to_l3_bytes() == wire

    @given(payload=st.binary(min_size=0, max_size=256))
    def test_property_parts_join_equals_bytes(self, payload):
        for packet in (
            make_udp_packet(payload),
            make_fragment(payload or b"z"),
            Packet.from_l3_bytes(make_udp_packet(payload).to_l3_bytes()),
        ):
            assert b"".join(bytes(p) for p in packet.to_l3_parts()) == packet.to_l3_bytes()


class TestCacheInvalidation:
    def test_ip_mutation_invalidates(self):
        packet = make_udp_packet()
        first = packet.to_l3_bytes()
        packet.ip.ident = 4242
        second = packet.to_l3_bytes()
        assert second != first
        assert IPv4Header.from_bytes(second).ident == 4242

    def test_l4_mutation_invalidates(self):
        packet = make_udp_packet()
        first = packet.to_l3_bytes()
        packet.l4.dport = 9
        second = packet.to_l3_bytes()
        assert second != first
        reparsed = Packet.from_l3_bytes(second)
        assert reparsed.l4.dport == 9

    def test_l4_mutation_after_lazy_parse_invalidates(self):
        wire = make_udp_packet().to_l3_bytes()
        lazy = Packet.from_l3_bytes(wire)
        assert lazy.to_l3_bytes() == wire  # seeded cache hit
        lazy.l4.sport = 1  # parse + mutate
        assert lazy.to_l3_bytes() != wire
        assert Packet.from_l3_bytes(lazy.to_l3_bytes()).l4.sport == 1

    def test_payload_replacement_invalidates(self):
        lazy = Packet.from_l3_bytes(make_udp_packet().to_l3_bytes())
        lazy.payload = b"short"
        lazy.ip.total_length = lazy.l3_len
        rebuilt = Packet.from_l3_bytes(lazy.to_l3_bytes())
        assert rebuilt.payload == b"short"

    def test_unchanged_packet_serializes_once(self):
        packet = make_udp_packet()
        before = WIRE_STATS.snapshot()
        packet.to_l3_bytes()
        packet.to_l3_bytes()
        packet.to_l3_bytes()
        after = WIRE_STATS.snapshot()
        assert after["l3_cache_misses"] - before["l3_cache_misses"] == 1
        assert after["l3_cache_hits"] - before["l3_cache_hits"] == 2

    def test_clone_carries_valid_cache(self):
        packet = make_udp_packet()
        wire = packet.to_l3_bytes()
        before = WIRE_STATS.snapshot()
        assert packet.clone().to_l3_bytes() == wire
        after = WIRE_STATS.snapshot()
        assert after["l3_cache_misses"] == before["l3_cache_misses"]


class TestCountersReporting:
    def test_engine_stats_include_serialization(self):
        sim = Simulator()
        stats = trace.engine_stats(sim)
        assert stats["serialization"] == WIRE_STATS.snapshot()

    def test_format_engine_stats_renders_counters(self):
        # Exercise the counters, then check they surface in the report.
        packet = make_udp_packet()
        packet.to_l3_bytes()
        packet.to_l3_bytes()
        sim = Simulator()
        out = report.format_engine_stats(trace.engine_stats(sim, wall_s=1.0))
        assert "serialization:" in out
        snap = WIRE_STATS.snapshot()
        assert f"lazy_l4={snap['lazy_l4_parses']:,}" in out
        assert f"packed={snap['bytes_packed']:,}B" in out
        assert "l3_cache=" in out and "pool=" in out

    def test_counters_reset(self):
        make_udp_packet().to_l3_bytes()
        WIRE_STATS.reset()
        snap = WIRE_STATS.snapshot()
        assert all(v == 0 for v in snap.values())
