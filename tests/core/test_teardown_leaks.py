"""Channel teardown with a non-empty waiting list.

The teardown bug fixed alongside the fault injector: unloading a module
while packets sat parked on a channel's waiting list used to strand the
borrowed staging buffers (never returned to the module pool) and leave
blocked senders waiting forever on a dead channel.  Teardown now
materializes the parked ENTRY_IPV4 wire images for a netfront resend,
releases every pooled buffer, and fails space-waiters with
:class:`ChannelDeadError`.
"""

from repro import scenarios
from repro.core.channel import ENTRY_IPV4, ChannelDeadError, ChannelState
from repro.net.addr import IPv4Addr
from repro.net.ethernet import IPPROTO_UDP
from repro.net.packet import IPv4Header, Packet, UdpHeader

from .conftest import FAST, first_channel

PAYLOAD = b"parked-on-the-waiting-list"
PORT = 7400


def _l3_packet(src_ip, dst_ip):
    pkt = Packet(
        payload=PAYLOAD,
        l4=UdpHeader(5555, PORT, 8 + len(PAYLOAD)),
        ip=IPv4Header(
            src=IPv4Addr(str(src_ip)), dst=IPv4Addr(str(dst_ip)), proto=IPPROTO_UDP
        ),
    )
    pkt.ip.total_length = pkt.l3_len
    return pkt


class TestTeardownWithWaitingList:
    def test_unload_releases_buffers_fails_waiters_and_resends(self):
        scn = scenarios.xenloop(FAST)
        scn.warmup(max_wait=10.0)
        sim = scn.sim
        module = scn.xenloop_module(scn.node_a)
        channel = first_channel(scn, scn.node_a)
        assert channel.state is ChannelState.CONNECTED

        # The parked datagrams must still arrive after teardown, via the
        # standard netfront resend path.
        server = scn.node_b.stack.udp_socket(PORT)
        received = []

        def srv():
            while True:
                data, _ = yield from server.recvfrom()
                received.append(data)

        sim.process(srv(), name="teardown-server")

        # Park three scatter-gather packets; each borrows a staging
        # buffer from the module pool.
        for _ in range(3):
            parts = _l3_packet(scn.ip_a, scn.ip_b).to_l3_parts()
            channel._park(ENTRY_IPV4, parts, sum(len(p) for p in parts))
        assert len(channel.waiting_list) == 3
        assert module.staging_pool.outstanding == 3

        # And one sender blocked on waiting-list space (the bypass
        # variant's flow control): it must be failed, not stranded.
        failures = []

        def blocked_sender():
            try:
                yield channel.wait_waiting_space()
            except ChannelDeadError as exc:
                failures.append(exc)

        sim.process(blocked_sender(), name="blocked-sender")

        proc = sim.process(module.unload(), name="unload")
        sim.run_until_complete(proc, timeout=30.0)
        sim.run(until=sim.now + 1.0)

        assert not channel.waiting_list
        assert module.staging_pool.outstanding == 0
        assert len(failures) == 1
        assert received == [PAYLOAD] * 3
