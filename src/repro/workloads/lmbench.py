"""lmbench-style workloads: ``bw_tcp`` and ``lat_tcp``.

``bw_tcp`` moves a fixed number of bytes in 64 KB writes and reports
Mbit/s (lmbench reports MB/s; we convert to match the paper's tables).
``lat_tcp`` is a 1-byte TCP ping-pong reporting round-trip latency in
microseconds, as lmbench does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.scenarios import Scenario

__all__ = ["BwResult", "LatResult", "bw_tcp", "lat_tcp"]


@dataclass
class BwResult:
    """bw_tcp outcome: bytes moved and Mbit/s."""
    bytes_moved: int
    mbps: float


@dataclass
class LatResult:
    """lat_tcp outcome: round trips and mean RTT in microseconds."""
    round_trips: int
    latency_us: float


def bw_tcp(
    scenario: "Scenario",
    total_bytes: int = 4 << 20,
    chunk: int = 65536,
    port: int = 5301,
) -> BwResult:
    """Move ``total_bytes`` over TCP in 64 KB writes; returns Mbit/s."""
    sim = scenario.sim
    done = {}

    def server():
        listener = scenario.node_b.stack.tcp_listen(port)
        conn = yield from listener.accept()
        listener.close()
        got = 0
        t_first = None
        while got < total_bytes:
            data = yield from conn.recv(1 << 17)
            if not data:
                break
            if t_first is None:
                t_first = sim.now
            got += len(data)
        elapsed = sim.now - t_first if t_first else 0.0
        done["result"] = BwResult(got, got * 8 / elapsed / 1e6 if elapsed > 0 else 0.0)
        yield from conn.close()

    def client():
        conn = yield from scenario.node_a.stack.tcp_connect((scenario.ip_b, port))
        msg = bytes(chunk)
        sent = 0
        while sent < total_bytes:
            yield from conn.send(msg)
            sent += len(msg)
        yield from conn.close()

    sproc = sim.process(server(), name="lmbench-bw-server")
    sim.process(client(), name="lmbench-bw-client")
    sim.run_until_complete(sproc, timeout=120)
    return done["result"]


def lat_tcp(scenario: "Scenario", round_trips: int = 500, port: int = 5302) -> LatResult:
    """1-byte TCP ping-pong; returns mean RTT in microseconds."""
    sim = scenario.sim
    done = {}

    def server():
        listener = scenario.node_b.stack.tcp_listen(port)
        conn = yield from listener.accept()
        listener.close()
        while True:
            try:
                data = yield from conn.recv_exactly(1)
            except OSError:
                break
            yield from conn.send(data)
        yield from conn.close()

    def client():
        conn = yield from scenario.node_a.stack.tcp_connect((scenario.ip_b, port))
        msg = b"x"
        # lmbench warms the path before timing.
        for _ in range(10):
            yield from conn.send(msg)
            yield from conn.recv_exactly(1)
        t0 = sim.now
        for _ in range(round_trips):
            yield from conn.send(msg)
            yield from conn.recv_exactly(1)
        elapsed = sim.now - t0
        yield from conn.close()
        done["result"] = LatResult(round_trips, elapsed / round_trips * 1e6)

    sim.process(server(), name="lmbench-lat-server")
    proc = sim.process(client(), name="lmbench-lat-client")
    sim.run_until_complete(proc, timeout=120)
    return done["result"]
