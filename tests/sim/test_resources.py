"""Tests for Resource, Store, and the CPU-core model."""

import pytest

from repro.sim.engine import SimulationError, Simulator
from repro.sim.resources import CPUCores, Resource, Store
from tests.conftest import run_gen


class TestResource:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_acquire_release(self, sim):
        res = Resource(sim, capacity=1)

        def gen():
            yield res.acquire()
            assert res.in_use == 1
            res.release()
            assert res.in_use == 0
            return True

        assert run_gen(sim, gen())

    def test_fifo_fairness(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def worker(i):
            yield res.acquire()
            order.append(i)
            yield sim.timeout(1.0)
            res.release()

        for i in range(4):
            sim.process(worker(i))
        sim.run()
        assert order == [0, 1, 2, 3]

    def test_release_idle_raises(self, sim):
        res = Resource(sim)
        with pytest.raises(SimulationError):
            res.release()

    def test_queued_count(self, sim):
        res = Resource(sim, capacity=1)

        def holder():
            yield res.acquire()
            yield sim.timeout(10.0)
            res.release()

        def waiter():
            yield res.acquire()
            res.release()

        sim.process(holder())
        sim.process(waiter())
        sim.run(until=1.0)
        assert res.queued == 1


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)

        def gen():
            yield store.put("a")
            item = yield store.get()
            return item

        assert run_gen(sim, gen()) == "a"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        result = {}

        def getter():
            result["item"] = yield store.get()
            result["time"] = sim.now

        def putter():
            yield sim.timeout(3.0)
            yield store.put("x")

        sim.process(getter())
        sim.process(putter())
        sim.run()
        assert result == {"item": "x", "time": 3.0}

    def test_fifo_order(self, sim):
        store = Store(sim)
        for i in range(5):
            store.put(i)
        got = []

        def gen():
            for _ in range(5):
                got.append((yield store.get()))

        run_gen(sim, gen())
        assert got == [0, 1, 2, 3, 4]

    def test_bounded_put_blocks(self, sim):
        store = Store(sim, capacity=2)
        events = []

        def putter():
            for i in range(4):
                yield store.put(i)
                events.append((i, sim.now))

        def getter():
            yield sim.timeout(5.0)
            yield store.get()
            yield sim.timeout(5.0)
            yield store.get()

        sim.process(putter())
        sim.process(getter())
        sim.run()
        # first two puts immediate, third at 5.0, fourth at 10.0
        assert [t for _i, t in events] == [0.0, 0.0, 5.0, 10.0]

    def test_try_put_respects_capacity(self, sim):
        store = Store(sim, capacity=1)
        assert store.try_put("a")
        assert not store.try_put("b")
        assert len(store) == 1

    def test_try_get(self, sim):
        store = Store(sim)
        found, item = store.try_get()
        assert not found
        store.put("z")
        found, item = store.try_get()
        assert found and item == "z"

    def test_put_hands_to_waiting_getter(self, sim):
        store = Store(sim, capacity=1)
        result = {}

        def getter():
            result["item"] = yield store.get()

        sim.process(getter())
        sim.run()
        assert store.try_put("direct")
        sim.run()
        assert result["item"] == "direct"
        assert len(store) == 0

    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Store(sim, capacity=0)


class TestCPUCores:
    def test_single_core_serializes(self, sim):
        cpus = CPUCores(sim, 1)
        done = []
        for i in range(3):
            ev = cpus.execute("dom", 1.0)
            ev.callbacks.append(lambda _e, i=i: done.append((i, sim.now)))
        sim.run()
        assert done == [(0, 1.0), (1, 2.0), (2, 3.0)]

    def test_two_cores_parallel(self, sim):
        cpus = CPUCores(sim, 2)
        times = []
        for i in range(2):
            ev = cpus.execute(f"dom{i}", 1.0)
            ev.callbacks.append(lambda _e: times.append(sim.now))
        sim.run()
        assert times == [1.0, 1.0]

    def test_switch_penalty_charged(self, sim):
        cpus = CPUCores(sim, 1, switch_penalty=0.5)
        times = []
        ev1 = cpus.execute("a", 1.0)
        ev1.callbacks.append(lambda _e: times.append(sim.now))
        ev2 = cpus.execute("b", 1.0)
        ev2.callbacks.append(lambda _e: times.append(sim.now))
        sim.run()
        # first segment: no penalty (cold core); second: +0.5 switch
        assert times == [1.0, 2.5]
        assert cpus.total_switches == 1

    def test_affinity_avoids_penalty(self, sim):
        cpus = CPUCores(sim, 2, switch_penalty=1.0)

        def run_domain(dom):
            yield cpus.execute(dom, 1.0)
            yield cpus.execute(dom, 1.0)

        sim.process(run_domain("a"))
        sim.process(run_domain("b"))
        sim.run()
        # each domain sticks to its core: no switches at all
        assert cpus.total_switches == 0
        assert sim.now == 2.0

    def test_vcpu_limit_serializes_domain(self, sim):
        cpus = CPUCores(sim, 2)
        cpus.set_vcpu_limit("guest", 1)
        times = []
        for _ in range(2):
            ev = cpus.execute("guest", 1.0)
            ev.callbacks.append(lambda _e: times.append(sim.now))
        sim.run()
        assert times == [1.0, 2.0]  # serialized despite 2 free cores

    def test_vcpu_limit_does_not_block_other_domains(self, sim):
        cpus = CPUCores(sim, 2)
        cpus.set_vcpu_limit("guest", 1)
        times = {}
        for name in ("guest", "guest", "other"):
            ev = cpus.execute(name, 1.0)
            ev.callbacks.append(lambda _e, n=name: times.setdefault(f"{n}{sim.now}", sim.now))
        sim.run()
        # other finishes at 1.0 in parallel with guest's first segment
        assert times.get("other1.0") == 1.0

    def test_negative_cost_rejected(self, sim):
        cpus = CPUCores(sim, 1)
        with pytest.raises(ValueError):
            cpus.execute("a", -1.0)

    def test_zero_cores_rejected(self, sim):
        with pytest.raises(ValueError):
            CPUCores(sim, 0)

    def test_busy_time_accounting(self, sim):
        cpus = CPUCores(sim, 2)
        cpus.execute("a", 2.0)
        cpus.execute("b", 3.0)
        sim.run()
        assert cpus.total_busy_time == pytest.approx(5.0)

    def test_queue_drains_in_order_per_domain(self, sim):
        cpus = CPUCores(sim, 1)
        order = []
        for i in range(5):
            ev = cpus.execute("d", 0.5)
            ev.callbacks.append(lambda _e, i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]
