"""Figures 6-7: NetPIPE-MPICH throughput and latency versus message size.

Fig. 6: one-way bandwidth; Fig. 7: one-way latency; both over the
mini-MPI library on simulated TCP, in all four scenarios.
"""

from repro import report
from repro.workloads import netpipe

from _bench_utils import SCENARIO_ORDER, build_warm, emit

SIZES = [16, 256, 1024, 4096, 16384, 65536]


def _measure():
    bw = {name: [] for name in SCENARIO_ORDER}
    lat = {name: [] for name in SCENARIO_ORDER}
    for name in SCENARIO_ORDER:
        scn = build_warm(name)
        res = netpipe.run(scn, sizes=SIZES)
        _sizes, mbps, lats = res.series()
        bw[name] = mbps
        lat[name] = lats
    return bw, lat


def test_fig6_7_netpipe(run_once, benchmark):
    bw, lat = run_once(_measure)
    emit(
        "fig6_netpipe_bw",
        report.format_series(
            "Fig. 6: NetPIPE-MPICH throughput (Mbit/s) vs message size (B)",
            "msg_size",
            SIZES,
            bw,
            precision=0,
        ),
    )
    emit(
        "fig7_netpipe_latency",
        report.format_series(
            "Fig. 7: NetPIPE-MPICH one-way latency (us) vs message size (B)",
            "msg_size",
            SIZES,
            lat,
            precision=1,
        ),
    )
    benchmark.extra_info["bw"] = {k: [round(v) for v in vs] for k, vs in bw.items()}
    # Shape (paper Sect. 4.3): XenLoop significantly better than
    # netfront, which closely tracks inter-machine; XenLoop latency
    # tracks native loopback.
    for i in range(len(SIZES)):
        assert bw["xenloop"][i] > bw["netfront_netback"][i]
        assert lat["xenloop"][i] < lat["netfront_netback"][i]
    # netfront "closely tracks the native inter-machine performance"
    mid = len(SIZES) // 2
    ratio = bw["netfront_netback"][mid] / bw["inter_machine"][mid]
    assert 0.5 < ratio < 3.0
