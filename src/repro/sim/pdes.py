"""Sharded conservative parallel simulation (multiprocess PDES).

The single-core engine tops out around 300k events/s, and profiling
attributes most of the remaining wall time to model code -- the next
factor comes from parallelism.  This module partitions a
:class:`~repro.topology.ClusterSpec` into one simulator *shard per
physical machine*, runs every shard in its own OS process, and couples
the shards with the classic conservative null-message protocol
(Chandy-Misra-Bryant), using the inter-machine wire latency as
lookahead.

Why per-machine shards work
---------------------------
The only state shared between machines is the switched ethernet
segment: every cross-machine interaction is a bridged frame, and a
frame leaving machine A at time ``t`` cannot affect machine B before ::

    t + switch_latency + wire_time(frame) + nic_rx_latency

The minimum over all frames (a bare ethernet header) is the protocol's
**lookahead** ``L`` (~42 us with the default cost model) -- every shard
can always safely execute ``L`` beyond what its peers have committed
to, no matter what they are about to send.

Protocol
--------
Shards exchange three message kinds over per-pair OS pipes:

``("F", t_send, arrival, seq, blob)``
    an exported frame.  ``arrival`` bakes in the full latency chain, so
    the importer delivers straight to its NICs at that timestamp.  A
    frame is also an implicit promise: the sender executes in time
    order, so nothing with send-time ``< t_send`` can follow, and the
    receiver can raise that channel's earliest-input-time (EIT) to
    ``t_send + L``.
``("N", eot)``
    a null message: "nothing from me will arrive before ``eot``".
``("X",)``
    shard finished (EIT becomes +inf; a broken pipe means the same).

Each shard's **horizon** is the min EIT over its peers; the round loop
commits buffered imports strictly below the horizon, runs local events
up to it, announces a new earliest-output-time, and blocks on the pipes
only when nothing else made progress.

Determinism contract
--------------------
For a fixed shard count, runs are bit-identical because every ordering
decision is simulation-derived, never wall-clock-derived:

* imports are committed only when the horizon is *strictly* above their
  arrival -- the pipes are FIFO and a frame implies its own promise, so
  at that point every import at that arrival (from every peer) is
  already buffered;
* same-arrival imports are delivered back-to-back in sorted
  ``(arrival, src_shard, src_seq)`` order, after all local events at
  times ``<= arrival`` (local-first rule);
* the clock only ever takes event times, import arrivals, and the
  caller's explicit ``until`` -- never a horizon value.

One shard (``shards=1``) skips the runtime entirely and builds through
the ordinary :meth:`ClusterSpec.build`, so it stays bit-identical to
the unsharded goldens.

When sharding is a loss
-----------------------
Null messages creep: two idle shards raise each other's horizon by only
``L`` per exchange, so long quiet stretches (settle phases) cost
``gap / L`` round trips of pure synchronization.  Sharding pays off
when per-shard event density is high and cross-shard traffic sparse --
exactly the co-resident-workload cluster shape -- and is a loss for
chatty cross-machine workloads, short runs dominated by process
startup, or a box without a free core per shard.
"""

from __future__ import annotations

import dataclasses
import heapq
import multiprocessing
import time
import traceback
from multiprocessing.connection import wait as _conn_wait
from typing import Callable, Optional

from repro.calibration import DEFAULT_COSTS, CostModel
from repro.net.ethernet import ETH_HEADER_LEN
from repro.sim.engine import PENDING, SimulationError, Simulator, _INF
from repro.sim.rng import make_shard_seeds

__all__ = [
    "CoupledSimulator",
    "ShardedRun",
    "bench_grid_spec",
    "lookahead",
    "run_local_workloads",
    "run_sharded",
]

#: default wall-clock budget for a whole sharded run (driver safety net).
DEFAULT_TIMEOUT = 600.0


def lookahead(costs: CostModel) -> float:
    """Minimum cross-shard latency: the null-message lookahead ``L``.

    The cheapest possible frame is a bare ethernet header; everything a
    shard exports arrives at least ``L`` after it was sent."""
    return costs.switch_latency + costs.wire_time(ETH_HEADER_LEN) + costs.nic_rx_latency


class _ShardRuntime:
    """Pipes, promises, and buffered imports for one shard process."""

    def __init__(self, shard: int, n_shards: int, la: float, conns: dict):
        self.shard = shard
        self.n_shards = n_shards
        self.lookahead = la
        #: peer shard -> duplex Connection (removed once the peer FINs).
        self.conns = dict(conns)
        #: peer shard -> earliest input time promised by that peer.
        self.eit = {peer: 0.0 for peer in conns}
        #: buffered imports: heap of (arrival, src_shard, src_seq, blob).
        self.buf: list = []
        #: per-peer highest EOT we have promised (monotone; never renege).
        self.sent_eot = {peer: -_INF for peer in conns}
        self.out_seq = 0
        self.sim: Optional[Simulator] = None  # bound by CoupledSimulator._couple
        self.link = None  # bound by the worker once the ShardLink exists
        # -- observability (profile_hotpath per-shard breakdown) --------
        self.null_sent = 0
        self.null_recv = 0
        self.frames_out = 0
        self.frames_in = 0
        self.blocked_s = 0.0

    # -- low-level sends (broken pipe == peer gone == FIN) --------------
    def _send(self, peer: int, msg: tuple) -> None:
        conn = self.conns.get(peer)
        if conn is None:
            return
        try:
            conn.send(msg)
        except (BrokenPipeError, OSError):
            self._finish_peer(peer)

    def _finish_peer(self, peer: int) -> None:
        conn = self.conns.pop(peer, None)
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        self.eit[peer] = _INF

    # -- protocol --------------------------------------------------------
    def send_frame(self, dest: Optional[int], t_send: float, arrival: float, blob: tuple) -> None:
        """Export a frame to one peer (or all, for broadcast/flood)."""
        self.out_seq += 1
        msg = ("F", t_send, arrival, self.out_seq, blob)
        promise = t_send + self.lookahead
        self.frames_out += 1
        targets = list(self.conns) if dest is None else (dest,)
        for peer in targets:
            self._send(peer, msg)
            if promise > self.sent_eot.get(peer, -_INF):
                self.sent_eot[peer] = promise

    def drain(self) -> bool:
        """Non-blocking: pull everything currently queued on the pipes."""
        progressed = False
        for peer in list(self.conns):
            conn = self.conns.get(peer)
            if conn is None:
                continue
            try:
                while conn.poll():
                    msg = conn.recv()
                    progressed = True
                    kind = msg[0]
                    if kind == "F":
                        _, t_send, arrival, seq, blob = msg
                        heapq.heappush(self.buf, (arrival, peer, seq, blob))
                        self.frames_in += 1
                        promise = t_send + self.lookahead
                        if promise > self.eit[peer]:
                            self.eit[peer] = promise
                    elif kind == "N":
                        self.null_recv += 1
                        if msg[1] > self.eit[peer]:
                            self.eit[peer] = msg[1]
                    else:  # "X": peer finished
                        self._finish_peer(peer)
                        break
            except (EOFError, OSError):
                self._finish_peer(peer)
        return progressed

    def horizon(self) -> float:
        """Min promised earliest-input-time over every peer ever known."""
        eit = self.eit
        return min(eit.values()) if eit else _INF

    def announce(self) -> None:
        """Send a null message to every peer whose promise we can raise.

        EOT = (earliest time we could possibly still execute) + L.  The
        three sources of future execution are local events (``peek``),
        buffered imports, and imports not yet received (>= horizon)."""
        sim = self.sim
        nxt = sim.peek()
        if self.buf and self.buf[0][0] < nxt:
            nxt = self.buf[0][0]
        h = self.horizon()
        if h < nxt:
            nxt = h
        eot = nxt + self.lookahead
        for peer in list(self.conns):
            if eot > self.sent_eot.get(peer, -_INF):
                self.sent_eot[peer] = eot
                self.null_sent += 1
                self._send(peer, ("N", eot))

    def wait_any(self, timeout: float) -> None:
        """Block until any peer pipe is readable (counts stall time)."""
        conns = list(self.conns.values())
        if not conns:
            return
        t0 = time.perf_counter()
        _conn_wait(conns, timeout)
        self.blocked_s += time.perf_counter() - t0

    def finish(self) -> None:
        """Announce completion, then keep the pipes drained until every
        peer has finished too -- a still-running peer must never block
        on a pipe we stopped reading."""
        for peer in list(self.conns):
            self._send(peer, ("X",))
        deadline = time.monotonic() + 60.0
        while self.conns and time.monotonic() < deadline:
            self.drain()
            if self.conns:
                self.wait_any(0.05)

    def counters(self) -> dict:
        return {
            "shard": self.shard,
            "null_sent": self.null_sent,
            "null_recv": self.null_recv,
            "frames_out": self.frames_out,
            "frames_in": self.frames_in,
            "blocked_s": self.blocked_s,
        }


class CoupledSimulator(Simulator):
    """A :class:`Simulator` that honours a conservative PDES horizon.

    Uncoupled (no runtime bound) it behaves exactly like the base
    engine.  Coupled, ``run``/``run_until_complete`` route through the
    round loop that interleaves local execution with import commits and
    null-message exchange; the base class's fast paths are untouched.
    """

    def __init__(self, strict: bool = True, seed=0):
        super().__init__(strict=strict, seed=seed)
        self._shard_runtime: Optional[_ShardRuntime] = None

    def _couple(self, runtime: _ShardRuntime) -> None:
        self._shard_runtime = runtime
        runtime.sim = self

    # -- public API overrides -------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        if self._shard_runtime is None:
            return super().run(until)
        if until is not None and until < self.now:
            raise SimulationError(f"until={until} is in the past (now={self.now})")
        self._run_coupled(until=until)

    def run_until_complete(self, process, timeout: Optional[float] = None):
        if self._shard_runtime is None:
            return super().run_until_complete(process, timeout)
        deadline = _INF if timeout is None else self.now + timeout
        self._run_coupled(stop=process, deadline=deadline)
        if not process.ok:
            raise process.value
        return process.value

    # -- the round loop --------------------------------------------------
    def _run_coupled(
        self,
        until: Optional[float] = None,
        stop=None,
        deadline: float = _INF,
    ) -> None:
        rt = self._shard_runtime
        buf = rt.buf
        link = rt.link
        limit = _INF if until is None else until
        from repro.net.devices import decode_frame

        while True:
            rt.drain()
            h = rt.horizon()
            progressed = False

            # 1. Commit imports strictly below the horizon.  Strictness
            # guarantees completeness: once h > arrival, every frame at
            # that arrival from every peer is already buffered (FIFO
            # pipes + the implicit frame promise).
            while buf and buf[0][0] < h and buf[0][0] <= limit:
                arrival = buf[0][0]
                # Local-first rule: finish everything at times <= arrival
                # before the imports materialize.
                if self.run_bounded(arrival, stop):
                    break
                if self.now < arrival:
                    self.now = arrival
                while buf and buf[0][0] == arrival:
                    _, src, _seq, blob = heapq.heappop(buf)
                    link.import_frame(src, decode_frame(blob))
                progressed = True

            # 2. Run local events up to the horizon (inclusive: an import
            # at exactly h is delivered after local events there, per the
            # local-first rule, so execution at h is safe).
            bound = h if h < limit else limit
            if self.peek() <= bound:
                self.run_bounded(bound, stop)
                progressed = True

            # 3. Termination.
            if stop is not None:
                if stop._state != PENDING:
                    rt.announce()
                    return
                no_pending_input = not buf or buf[0][0] > deadline
                if h > deadline and self.peek() > deadline and no_pending_input:
                    raise SimulationError(f"timeout waiting for {stop.name}")
                if not rt.conns and not buf and self.peek() == _INF:
                    raise SimulationError(f"deadlock: {stop.name} never finished")
            elif until is not None:
                # h > until means every import at arrival <= until was
                # already committed (strictly-below rule); anything left
                # in buf is beyond until and waits for the next run call.
                if h > until and self.peek() > until:
                    self.now = until
                    rt.announce()
                    return
            else:
                if not rt.conns and not buf and self.peek() == _INF:
                    return

            # 4. Promise, then block only if this round achieved nothing.
            rt.announce()
            if not progressed:
                rt.wait_any(0.05)


@dataclasses.dataclass
class ShardedRun:
    """Result of :func:`run_sharded`."""

    #: per-shard entry dicts: shard, machine, stats, pdes, result.
    shards: list
    #: merged engine/serialization/notify/pdes stats (trace.merge_shard_stats).
    stats: dict
    #: concatenated per-shard script results, in shard order.
    results: list


def run_local_workloads(cluster) -> list:
    """Default shard script: run the spec workloads whose client lives on
    this shard, sequentially, returning plain-dict results (picklable)."""
    from repro.workloads import netperf

    out = []
    for wl in cluster.spec.workloads if cluster.spec else ():
        if wl.client not in cluster.guests:
            continue
        fn = getattr(netperf, wl.kind, None)
        if fn is None:
            raise ValueError(f"unknown workload kind {wl.kind!r}")
        result = fn(cluster.view(wl.client, wl.server), **wl.params)
        out.append(
            {
                "kind": wl.kind,
                "client": wl.client,
                "server": wl.server,
                "result": dataclasses.asdict(result),
            }
        )
    return out


def _close_foreign_conns(all_conns: dict, mine: int) -> None:
    # fork() hands every worker the whole pipe mesh; close the pairs that
    # are not ours so EOF propagates when a peer dies.
    for owner, peers in all_conns.items():
        for conn in peers.values():
            if owner != mine:
                try:
                    conn.close()
                except OSError:
                    pass


def _shard_worker(
    spec,
    shard: int,
    n_shards: int,
    costs: CostModel,
    seed,
    all_conns: dict,
    result_conn,
    script: Optional[Callable],
    fault_rules: tuple,
    fault_seed: int,
) -> None:
    try:
        # Reset process-global state inherited through fork: stats
        # accumulators and the guest MAC counter (rebased per shard by
        # build_shard so MACs match the unsharded build).
        from repro import trace
        from repro.net.nic import ShardLink
        from repro.net.packet import WIRE_STATS
        from repro.topology import build_shard
        from repro.xen.event_channel import NOTIFY_STATS

        WIRE_STATS.reset()
        NOTIFY_STATS.reset()
        _close_foreign_conns(all_conns, shard)

        t0 = time.perf_counter()
        rt = None
        if n_shards == 1:
            # Single shard: the ordinary build path, bit-identical to an
            # unsharded run (same Simulator, same seed, same phases).
            cluster = spec.build(costs, seed=seed)
            machine = None
        else:
            sim = CoupledSimulator(seed=seed)
            rt = _ShardRuntime(shard, n_shards, lookahead(costs), all_conns[shard])
            sim._couple(rt)
            link = ShardLink(sim, costs, rt)
            rt.link = link
            cluster = build_shard(spec, shard, costs, sim, link)
            machine = spec.machines[shard].name
        if fault_rules:
            from repro.faults import FaultPlan

            FaultPlan(list(fault_rules), seed=fault_seed).bind(cluster)
        if rt is not None:
            rt.announce()  # initial promise unblocks the peers
        result = (script or run_local_workloads)(cluster)
        wall = time.perf_counter() - t0
        if rt is not None:
            rt.finish()
        entry = {
            "shard": shard,
            "machine": machine,
            "stats": trace.engine_stats(cluster.sim, wall),
            "pdes": rt.counters() if rt is not None else None,
            "result": result,
        }
        result_conn.send(("ok", shard, entry))
    except BaseException:
        try:
            result_conn.send(("error", shard, traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        try:
            result_conn.close()
        except OSError:
            pass


def _resolve_shards(spec, shards: Optional[int]) -> int:
    n_machines = len(spec.machines)
    n = n_machines if shards is None else shards
    if n != 1 and n != n_machines:
        raise ValueError(
            f"shards must be 1 or the machine count ({n_machines}), not {n}: "
            "the partition unit is one shard per MachineSpec"
        )
    if n > 1:
        home = {g.name: m.name for m in spec.machines for g in m.guests}
        for wl in spec.workloads:
            if home.get(wl.client) != home.get(wl.server):
                raise ValueError(
                    f"workload {wl.kind} {wl.client}->{wl.server} spans shards; "
                    "sharded runs need co-resident workload pairs"
                )
        for act in spec.churn:
            if act.action == "migrate":
                raise ValueError("cross-machine migration is not supported under sharding")
    return n


def run_sharded(
    spec,
    shards: Optional[int] = None,
    costs: CostModel = DEFAULT_COSTS,
    seed: int = 0,
    script: Optional[Callable] = None,
    fault_rules: tuple = (),
    fault_seed: int = 0,
    timeout: float = DEFAULT_TIMEOUT,
) -> ShardedRun:
    """Run ``spec`` partitioned into one shard per machine.

    ``shards`` must be 1 (plain build in a single worker -- the
    bit-identical baseline) or ``len(spec.machines)``.  ``script`` is a
    callable ``(cluster) -> picklable`` executed inside each worker
    (default: :func:`run_local_workloads`); with fork start method it
    may be a closure.  ``fault_rules`` are rebuilt into a
    :class:`~repro.faults.FaultPlan` inside each worker.

    Returns a :class:`ShardedRun`; raises RuntimeError when any worker
    errors or the wall-clock ``timeout`` expires.
    """
    n = _resolve_shards(spec, shards)
    seeds = make_shard_seeds(seed, n)
    ctx = multiprocessing.get_context("fork")

    all_conns: dict[int, dict] = {i: {} for i in range(n)}
    for i in range(n):
        for j in range(i + 1, n):
            a, b = ctx.Pipe(duplex=True)
            all_conns[i][j] = a
            all_conns[j][i] = b

    workers = []
    for i in range(n):
        recv_end, send_end = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_shard_worker,
            args=(spec, i, n, costs, seeds[i], all_conns, send_end, script,
                  tuple(fault_rules), fault_seed),
            name=f"shard-{i}",
        )
        proc.start()
        send_end.close()
        workers.append((proc, recv_end))
    # The parent holds a copy of every data-pipe end; close them all so
    # worker death surfaces as EOF on the survivors' pipes.
    for peers in all_conns.values():
        for conn in peers.values():
            conn.close()

    entries: list = [None] * n
    errors: list[str] = []
    wall_deadline = time.monotonic() + timeout
    for i, (proc, recv_end) in enumerate(workers):
        remaining = wall_deadline - time.monotonic()
        if remaining <= 0 or not recv_end.poll(remaining):
            errors.append(f"shard {i}: no result within {timeout:.0f}s")
            continue
        try:
            status, idx, payload = recv_end.recv()
        except EOFError:
            errors.append(f"shard {i}: worker exited without a result")
            continue
        if status == "ok":
            entries[idx] = payload
        else:
            errors.append(f"shard {idx} failed:\n{payload}")

    for proc, recv_end in workers:
        proc.join(timeout=5.0)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)
        try:
            recv_end.close()
        except OSError:
            pass

    if errors:
        raise RuntimeError("sharded run failed:\n" + "\n".join(errors))

    from repro import trace

    results: list = []
    for entry in entries:
        results.extend(entry["result"] if isinstance(entry["result"], list) else [entry["result"]])
    return ShardedRun(shards=entries, stats=trace.merge_shard_stats(entries), results=results)


def bench_grid_spec(
    n_machines: int = 2,
    guests_per_machine: int = 2,
    msg_size: int = 4096,
    duration: float = 0.5,
):
    """The sharded-bench topology: ``n_machines`` Xen machines, each with
    its own co-resident udp_stream pair, so per-shard load is identical
    and cross-shard traffic is discovery/ARP only -- the shape where the
    per-machine partition should scale."""
    from repro.topology import ClusterSpec, GuestSpec, MachineSpec, WorkloadSpec

    if guests_per_machine < 2:
        raise ValueError("each machine needs >= 2 guests for a co-resident pair")
    machines = []
    workloads = []
    for i in range(n_machines):
        guests = [GuestSpec(f"m{i}g{j}") for j in range(guests_per_machine)]
        machines.append(MachineSpec(f"xen{i}", guests=guests))
        workloads.append(
            WorkloadSpec(
                "udp_stream",
                client=f"m{i}g0",
                server=f"m{i}g1",
                params={"msg_size": msg_size, "duration": duration},
            )
        )
    return ClusterSpec(
        name=f"bench_grid_{n_machines}x{guests_per_machine}",
        machines=machines,
        workloads=workloads,
        expect_channels=False,
    )
