"""Live migration with XenLoop loaded (paper Sect. 3.4 + Fig. 11 setup)."""

import pytest

from repro import scenarios
from repro.core.channel import ChannelState
from repro.xen.migration import live_migrate

FAST_MIG = scenarios.DEFAULT_COSTS.replace(
    discovery_period=0.2,
    bootstrap_timeout=0.01,
    migration_duration=0.3,
    migration_downtime=0.05,
)


@pytest.fixture
def pair():
    scn = scenarios.migration_pair(FAST_MIG)
    scn.warmup()
    return scn


def migrate(scn, guest, dst):
    proc = scn.sim.process(live_migrate(guest, dst))
    return scn.sim.run_until_complete(proc, timeout=60)


def udp_roundtrip(scn, payload, port):
    sim = scn.sim
    server = scn.node_b.stack.udp_socket(port)
    client = scn.node_a.stack.udp_socket()

    def gen():
        yield from client.sendto(payload, (scn.ip_b, port))
        data, addr = yield from server.recvfrom()
        yield from server.sendto(data.upper(), addr)
        resp, _ = yield from client.recvfrom()
        return resp

    proc = sim.process(gen())
    result = sim.run_until_complete(proc, timeout=30)
    server.close()
    client.close()
    return result


def wait_for_channel(scn, max_wait=10.0):
    sim = scn.sim
    deadline = sim.now + max_wait
    port_seq = iter(range(8300, 8400))
    while sim.now < deadline:
        udp_roundtrip(scn, b"probe", next(port_seq))
        if all(
            any(ch.state is ChannelState.CONNECTED for ch in m.channels.values())
            for m in scn.modules.values()
        ):
            return True
        sim.run(until=sim.now + FAST_MIG.discovery_period / 2)
    return False


class TestMigrationMechanics:
    def test_domain_moves_and_gets_new_domid(self, pair):
        scn = pair
        machine_a, machine_b = scn.machines
        vm2 = scn.node_b
        old_domid = vm2.domid
        new_domid = migrate(scn, vm2, machine_a)
        assert vm2.machine is machine_a
        assert new_domid == vm2.domid
        assert new_domid != old_domid
        assert vm2.domid in machine_a.domains
        assert old_domid not in machine_b.domains

    def test_xenstore_state_moves(self, pair):
        scn = pair
        machine_a, machine_b = scn.machines
        vm2 = scn.node_b
        old = vm2.domid
        migrate(scn, vm2, machine_a)
        assert not machine_b.xenstore.exists(0, f"/local/domain/{old}")
        assert machine_a.xenstore.exists(0, f"/local/domain/{vm2.domid}")

    def test_connectivity_survives_migration(self, pair):
        scn = pair
        machine_a, _machine_b = scn.machines
        assert udp_roundtrip(scn, b"before", 8201) == b"BEFORE"
        migrate(scn, scn.node_b, machine_a)
        assert udp_roundtrip(scn, b"after", 8202) == b"AFTER"

    def test_module_readvertises_after_migration(self, pair):
        scn = pair
        machine_a, _ = scn.machines
        vm2 = scn.node_b
        migrate(scn, vm2, machine_a)
        path = f"/local/domain/{vm2.domid}/xenloop"
        scn.sim.run(until=scn.sim.now + 0.1)
        assert machine_a.xenstore.read(0, path) == str(vm2.mac)


class TestChannelLifecycleAcrossMigration:
    def test_comigration_establishes_channel(self, pair):
        """VMs on different machines have no channel; after migrating
        together, discovery + traffic bootstrap one."""
        scn = pair
        machine_a, _ = scn.machines
        assert not scn.xenloop_module(scn.node_a).channels
        migrate(scn, scn.node_b, machine_a)
        assert wait_for_channel(scn)

    def test_channel_used_after_comigration(self, pair):
        scn = pair
        machine_a, _ = scn.machines
        migrate(scn, scn.node_b, machine_a)
        wait_for_channel(scn)
        module_a = scn.xenloop_module(scn.node_a)
        before = module_a.pkts_via_channel
        udp_roundtrip(scn, b"shm", 8203)
        assert module_a.pkts_via_channel > before

    def test_migrate_away_tears_channel_down(self, pair):
        scn = pair
        machine_a, machine_b = scn.machines
        migrate(scn, scn.node_b, machine_a)
        wait_for_channel(scn)
        migrate(scn, scn.node_b, machine_b)
        scn.sim.run(until=scn.sim.now + 0.2)
        assert not scn.xenloop_module(scn.node_b).channels
        assert not scn.xenloop_module(scn.node_a).channels
        # and traffic still flows over the wire
        assert udp_roundtrip(scn, b"remote", 8204) == b"REMOTE"

    @pytest.mark.slow
    def test_tcp_connection_survives_round_trip_migration(self, pair):
        """An established TCP connection keeps working while its peer
        migrates in and back out (paper: "without disrupting ongoing
        network communications")."""
        scn = pair
        machine_a, machine_b = scn.machines
        sim = scn.sim
        listener = scn.node_b.stack.tcp_listen(8205)
        state = {"received": 0, "stop": False}

        def srv():
            conn = yield from listener.accept()
            while not state["stop"]:
                data = yield from conn.recv(65536)
                if not data:
                    break
                state["received"] += len(data)

        def cli():
            conn = yield from scn.node_a.stack.tcp_connect((scn.ip_b, 8205))
            state["conn"] = conn
            while not state["stop"]:
                yield from conn.send(bytes(1000))
                yield sim.timeout(0.001)

        sim.process(srv())
        sim.process(cli())
        sim.run(until=sim.now + 0.5)
        received_phase1 = state["received"]
        assert received_phase1 > 0

        migrate(scn, scn.node_b, machine_a)
        sim.run(until=sim.now + 2.0)
        received_phase2 = state["received"]
        assert received_phase2 > received_phase1  # flowed while co-resident

        migrate(scn, scn.node_b, machine_b)
        sim.run(until=sim.now + 2.0)
        assert state["received"] > received_phase2  # flows again after leaving
        state["stop"] = True
        sim.run(until=sim.now + 0.1)
