"""The per-node network stack.

Owns the devices, the netfilter registry, the ARP cache, and the IPv4 /
ICMP / UDP / TCP layers.  All receive-side protocol processing runs in a
single "softirq" process per node (NAPI-style), which is where
per-packet receive CPU is charged.

Two stack entry points matter to XenLoop:

* ``netfilter`` (POST_ROUTING) -- where the module's hook steals
  outgoing packets (Sect. 3.1);
* ``rx_network`` -- where the module re-injects packets popped from the
  FIFO "into the network layer (layer-3)" on the receive side
  (Sect. 3.3);

plus ``register_ethertype`` , the ``dev_add_pack`` analogue the module
uses to receive XenLoop-type control frames (discovery announcements
and channel bootstrap messages).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro import trace
from repro.net.addr import IPv4Addr, MacAddr
from repro.net.arp import NeighborCache
from repro.net.devices import LoopbackDevice, NetDevice
from repro.net.ethernet import ETH_P_ARP, ETH_P_IP
from repro.net.icmp import IcmpLayer
from repro.net.ipv4 import Ipv4Layer
from repro.net.netfilter import NetfilterRegistry
from repro.net.node import Node
from repro.net.packet import EthHeader, Packet
from repro.net.tcp import TcpLayer
from repro.net.udp import UdpLayer
from repro.sim.resources import Store

__all__ = ["NetworkStack"]


class _InjectSource:
    """Pseudo-device for packets injected directly at layer 3 (XenLoop)."""

    def __init__(self, name: str):
        self.name = name
        self.mac = MacAddr(0)

    def rx_cost(self, packet) -> float:
        return 0.0


class NetworkStack:
    """Per-node protocol stack: devices, hooks, ARP, IP, ICMP, UDP, TCP."""
    def __init__(
        self,
        node: Node,
        ip: IPv4Addr,
        prefix_len: int = 24,
        gateway: Optional[IPv4Addr] = None,
    ):
        self.node = node
        node.stack = self
        self.ip = ip
        self.network = ip
        self.prefix_len = prefix_len
        self.gateway = gateway

        self.netfilter = NetfilterRegistry()
        self.devices: list[NetDevice] = []
        self.loopback = LoopbackDevice(node, node.costs)
        self.loopback.attach(self)
        self._primary: Optional[NetDevice] = None

        self.arp = NeighborCache(self)
        self.ipv4 = Ipv4Layer(self)
        self.icmp = IcmpLayer(self)
        self.udp = UdpLayer(self)
        self.tcp = TcpLayer(self)

        #: ethertype -> generator function(packet, dev), softirq context.
        self._ethertype_handlers: dict[int, Callable] = {}
        #: optional transport-layer interceptor (the experimental
        #: socket-bypass XenLoop variant).  When set, tcp_connect first
        #: offers the connection to it; None from the interceptor means
        #: "fall back to real TCP" -- transparent either way.
        self.transport_intercept = None

        self._backlog = Store(node.sim)
        self.rx_frames = 0
        self.rx_dropped = 0
        # Hot-path singletons: layer-3 injection (the XenLoop receive
        # path) reuses one pseudo-source, and the softirq trace stage is
        # formatted once, not per frame.
        self._inject_sources: dict[str, _InjectSource] = {}
        self._softirq_stage = f"softirq@{node.name}"
        node.spawn(self._softirq_loop(), name="softirq")

    def snapshot_state(self) -> dict:
        """The stack's soft state: ARP cache, reassembler, socket tables
        (UDP ports with queue depths, TCP connections/listeners), and
        the receive counters."""
        return {
            "ip": str(self.ip),
            "arp": self.arp.snapshot_state(),
            "reassembler": self.ipv4.reassembler.snapshot_state(),
            "udp_sockets": {
                str(port): {
                    "queued": len(sock.queue),
                    "queued_bytes": sock.queued_bytes,
                    "recv_waiters": len(sock._recv_waiters),
                    "drops": sock.drops,
                    "rx_msgs": sock.rx_msgs,
                    "rx_bytes": sock.rx_bytes,
                    "closed": sock.closed,
                }
                for port, sock in self.udp.ports.items()
            },
            "tcp_connections": sorted(
                f"{k[0]}:{k[1]}>{k[2]}:{k[3]}" if len(k) == 4 else repr(k)
                for k in self.tcp.connections
            ),
            "tcp_listeners": sorted(self.tcp.listeners),
            "rx_frames": self.rx_frames,
            "rx_dropped": self.rx_dropped,
        }

    # -- device management -------------------------------------------------
    def add_device(self, dev: NetDevice, primary: bool = True) -> None:
        """Attach a device; the first (or primary=True) becomes the route target."""
        dev.attach(self)
        self.devices.append(dev)
        if primary or self._primary is None:
            self._primary = dev

    def primary_device(self) -> Optional[NetDevice]:
        """The device non-loopback routes resolve to."""
        return self._primary

    # -- receive path --------------------------------------------------------
    def deliver(self, packet: Packet, dev) -> None:
        """Called by devices (any context): queue a frame for the softirq."""
        self._backlog.put((packet, dev))

    def rx_network(self, packet: Packet, source_name: str = "xenloop") -> None:
        """Inject a packet directly at the network layer (no eth header).

        The injected packet is typically lazily parsed (fresh off the
        FIFO): the softirq queues and charges it by size alone; the body
        first materializes at L4 dispatch.
        """
        source = self._inject_sources.get(source_name)
        if source is None:
            source = self._inject_sources[source_name] = _InjectSource(source_name)
        self._backlog.put((packet, source))

    @property
    def backlog_depth(self) -> int:
        """Frames queued for the softirq right now."""
        return len(self._backlog)

    #: max frames pulled off the backlog per charged burst (NAPI-style
    #: budget); bounds the timing shift from the aggregated rx charge.
    SOFTIRQ_BURST = 64

    def _softirq_loop(self):
        node = self.node
        backlog = self._backlog
        while True:
            first = yield backlog.get()
            # NAPI-style burst: drain whatever else is already queued and
            # charge ONE aggregated rx segment for the burst (total cost
            # identical to per-frame charging), then dispatch each frame.
            burst = [first]
            while len(burst) < self.SOFTIRQ_BURST:
                found, item = backlog.try_get()
                if not found:
                    break
                burst.append(item)
            self.rx_frames += len(burst)
            now = node.sim.now
            stage = self._softirq_stage
            cost = 0.0
            for packet, dev in burst:
                trace.mark(packet, stage, now)
                cost += dev.rx_cost(packet)
            if cost:
                yield node.exec(cost)
            for packet, dev in burst:
                if packet.eth is None:
                    # Layer-3 injection (XenLoop receive path, loopback-free).
                    yield from self.ipv4.input(packet, dev)
                    continue
                dst = packet.eth.dst
                if (
                    getattr(dev, "mac", None) is not None
                    and dev.mac.value != 0
                    and dst != dev.mac
                    and not dst.is_broadcast
                    and not dst.is_multicast
                ):
                    # Flooded frame for someone else (bridge/switch learning).
                    self.rx_dropped += 1
                    continue
                ethertype = packet.eth.ethertype
                if ethertype == ETH_P_IP:
                    yield from self.ipv4.input(packet, dev)
                elif ethertype == ETH_P_ARP:
                    yield node.exec(node.costs.arp_lookup)
                    self.arp.handle_frame(packet, dev)
                else:
                    handler = self._ethertype_handlers.get(ethertype)
                    if handler is None:
                        self.rx_dropped += 1
                    else:
                        yield from handler(packet, dev)

    # -- link-layer output -----------------------------------------------
    def link_output(self, dev: NetDevice, dst_mac: MacAddr, ethertype: int, payload: bytes):
        """Send a raw L2 frame (generator, caller's context)."""
        packet = Packet(
            payload=payload,
            eth=EthHeader(dst=dst_mac, src=dev.mac, ethertype=ethertype),
        )
        yield self.node.exec(dev.tx_cost(packet))
        yield dev.queue_xmit(packet)
        return True

    # -- protocol handler registry ------------------------------------------
    def register_ethertype(self, ethertype: int, handler: Callable) -> None:
        """dev_add_pack analogue: claim a non-IP ethertype."""
        if ethertype in self._ethertype_handlers:
            raise ValueError(f"ethertype {ethertype:#06x} already registered")
        self._ethertype_handlers[ethertype] = handler

    def unregister_ethertype(self, ethertype: int) -> None:
        """Release a claimed ethertype."""
        self._ethertype_handlers.pop(ethertype, None)

    # -- convenience socket API (used by workloads/examples) ----------------
    def udp_socket(self, port: int = 0, rcvbuf: int = 1 << 20):
        """Create a UDP socket (port 0 = ephemeral)."""
        return self.udp.socket(port, rcvbuf=rcvbuf)

    def tcp_listen(self, port: int, backlog: int = 16, **kwargs):
        """Create a TCP listener on ``port``."""
        return self.tcp.listen(port, backlog, **kwargs)

    def tcp_connect(self, remote: tuple[IPv4Addr, int], **kwargs):
        """Generator: returns an ESTABLISHED connection object.

        With a transport interceptor installed this may be a
        shared-memory bypass stream instead of a TcpConnection; both
        expose the same blocking API, so callers cannot tell.
        """
        if self.transport_intercept is not None:
            return self._intercepted_connect(remote, **kwargs)
        return self.tcp.connect(remote, **kwargs)

    def _intercepted_connect(self, remote: tuple[IPv4Addr, int], **kwargs):
        conn = yield from self.transport_intercept.intercept_connect(remote)
        if conn is not None:
            return conn
        conn = yield from self.tcp.connect(remote, **kwargs)
        return conn
