"""Unit tests for the deterministic fault-injection plan."""

import pytest

from repro import faults
from repro.sim.engine import Simulator


class TestRuleValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            faults.FaultRule("meteor_strike")

    def test_prob_out_of_range(self):
        with pytest.raises(ValueError, match="prob"):
            faults.FaultRule(faults.CONTROL_DROP, prob=1.5)

    def test_unknown_phase_rejected(self):
        with pytest.raises(ValueError, match="phase"):
            faults.FaultRule(faults.CRASH, phase="warp")

    def test_migrate_needs_target(self):
        with pytest.raises(ValueError, match="to_machine"):
            faults.FaultRule(faults.MIGRATE, phase="connected")

    def test_phase_kinds_need_phase(self):
        with pytest.raises(ValueError, match="needs a phase"):
            faults.FaultRule(faults.CRASH)

    def test_pkt_loss_unknown_class_rejected(self):
        with pytest.raises(ValueError, match="pkt_loss traffic class"):
            faults.FaultRule(faults.PKT_LOSS, message="carrier_pigeon")

    def test_pkt_loss_classes_accepted(self):
        for cls in (None, "tcp", "tcp_ack", "tcp_data", "udp", "icmp"):
            faults.FaultRule(faults.PKT_LOSS, message=cls)

    def test_loss_rules_gate(self):
        # The bridge's hot path consults has_loss_rules before matching.
        assert faults.FaultPlan(
            (faults.FaultRule(faults.PKT_LOSS),)
        ).has_loss_rules
        assert not faults.FaultPlan(
            (faults.FaultRule(faults.NOTIFY_DROP),)
        ).has_loss_rules


class TestGating:
    def test_skip_then_times(self):
        plan = faults.FaultPlan(
            (faults.FaultRule(faults.NOTIFY_DROP, skip=2, times=3),)
        )
        fired = [plan.notify_lost("vm1") for _ in range(8)]
        assert fired == [False, False, True, True, True, False, False, False]
        assert plan.injected[faults.NOTIFY_DROP] == 3

    def test_times_none_is_unlimited(self):
        plan = faults.FaultPlan((faults.FaultRule(faults.MAP_FAIL, times=None),))
        assert all(plan.map_fails("vm1") for _ in range(20))

    def test_guest_filter(self):
        plan = faults.FaultPlan(
            (faults.FaultRule(faults.NOTIFY_DROP, guest="vm2", times=None),)
        )
        assert not plan.notify_lost("vm1")
        assert plan.notify_lost("vm2")
        assert not plan.notify_lost(None)

    def test_prob_draws_are_seed_deterministic(self):
        def draws(seed):
            plan = faults.FaultPlan(
                (faults.FaultRule(faults.NOTIFY_DROP, prob=0.5, times=None),),
                seed=seed,
            )
            return [plan.notify_lost("vm1") for _ in range(64)]

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)
        assert any(draws(7)) and not all(draws(7))

    def test_control_rules_compose(self):
        plan = faults.FaultPlan(
            (
                faults.FaultRule(faults.CONTROL_DELAY, message="Announce", delay=0.01),
                faults.FaultRule(faults.CONTROL_DELAY, message="Announce", delay=0.02),
                faults.FaultRule(faults.CONTROL_DUP, message="Announce"),
            )
        )
        deliver, delay, dup = plan.on_control("dom0", "Announce")
        assert deliver
        assert delay == pytest.approx(0.03)
        assert dup == 1
        # Message-type filter: other frames pass untouched.
        assert plan.on_control("dom0", "CreateChannel") == (True, 0.0, 0)

    def test_drop_wins_over_delay(self):
        plan = faults.FaultPlan(
            (
                faults.FaultRule(faults.CONTROL_DROP, message="ChannelAck"),
                faults.FaultRule(faults.CONTROL_DELAY, message="ChannelAck", delay=0.5),
            )
        )
        deliver, _delay, _dup = plan.on_control("vm1", "ChannelAck")
        assert not deliver


class TestInstallAndSnapshot:
    def test_install_sets_sim_attribute(self):
        sim = Simulator(seed=0)
        plan = faults.FaultPlan().install(sim)
        assert faults.plan_of(sim) is plan

    def test_snapshot_shape(self):
        plan = faults.FaultPlan((faults.FaultRule(faults.NOTIFY_DROP),))
        plan.notify_lost("vm1")
        snap = plan.snapshot()
        assert snap == {
            "rules": 1,
            "injected": {faults.NOTIFY_DROP: 1},
            "recovered": {},
            "degraded": {},
        }

    def test_notes_are_noops_without_plan(self):
        sim = Simulator(seed=0)
        faults.note_recovered(sim, "bootstrap_retry")
        faults.note_degraded(sim, "bootstrap_abort")
        assert faults.plan_of(sim) is None

    def test_notes_accumulate_with_plan(self):
        sim = Simulator(seed=0)
        plan = faults.FaultPlan().install(sim)
        faults.note_recovered(sim, "fallback_resend", 3)
        faults.note_degraded(sim, "bootstrap_abort")
        assert plan.recovered["fallback_resend"] == 3
        assert plan.degraded["bootstrap_abort"] == 1

    def test_engine_stats_surface_counters(self):
        from repro import trace

        sim = Simulator(seed=0)
        stats = trace.engine_stats(sim)
        assert "faults" not in stats
        faults.FaultPlan((faults.FaultRule(faults.MAP_FAIL),)).install(sim)
        stats = trace.engine_stats(sim)
        assert stats["faults"]["rules"] == 1

    def test_format_engine_stats_renders_faults_line(self):
        from repro import report

        stats = {
            "events": 10,
            "faults": {
                "rules": 2,
                "injected": {"control_drop": 1},
                "recovered": {"bootstrap_retry": 1},
                "degraded": {},
            },
        }
        out = report.format_engine_stats(stats)
        assert "faults:" in out
        assert "control_drop=1" in out
        assert "bootstrap_retry=1" in out
