"""Engine-throughput regression bench (events/sec + wall-clock).

Not a paper figure: this tracks the *simulator's* own speed on the
profiled workload from the fast-path PR -- ``udp_stream`` over the
``xenloop`` scenario, 4 KB messages, 0.5 s simulated -- so the perf
trajectory is visible from PR to PR.  Results append to
``BENCH_engine.json`` at the repo root: one history entry per run,
keyed by git SHA (events processed, wall-clock, events/sec,
serialization-cache counters, plus the simulated result so determinism
drift is also visible).

The timed run is preceded by an untimed warmup pass so one-time costs
(module bytecode, the lazy ``numpy.random`` import on the virq-jitter
path) don't land inside the measured window -- the figure tracks the
steady-state engine, not interpreter start-up.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py

or as part of the bench suite (``make bench-smoke`` / ``pytest
benchmarks/ --benchmark-only``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import time

from repro import report, scenarios, trace
from repro.net.packet import WIRE_STATS
from repro.workloads import netperf
from repro.xen.event_channel import NOTIFY_STATS

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_engine.json"

#: fields copied from a legacy (single-payload) BENCH_engine.json when
#: converting it into the first history entry.
_LEGACY_FIELDS = ("events", "sim_time", "wall_s", "events_per_sec", "result")


def _git_sha() -> str:
    """Short SHA of HEAD, or 'unknown' outside a usable git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip() or "unknown"


def _load_history(output: pathlib.Path) -> list[dict]:
    """Existing history entries (converting the pre-history format)."""
    if not output.exists():
        return []
    try:
        data = json.loads(output.read_text())
    except (ValueError, OSError):
        return []
    if isinstance(data, dict) and isinstance(data.get("history"), list):
        return data["history"]
    if isinstance(data, dict) and "events" in data:
        # Legacy format: the whole file was one run's payload.
        entry = {k: data[k] for k in _LEGACY_FIELDS if k in data}
        entry["sha"] = data.get("sha", "pre-history")
        return [entry]
    return []


def run(
    scenario: str = "xenloop",
    msg_size: int = 4096,
    duration: float = 0.5,
    output: pathlib.Path = DEFAULT_OUTPUT,
    reps: int = 3,
) -> dict:
    """Run the fixed workload, print and append the engine stats.

    The workload is deterministic, so every rep simulates the identical
    event stream; the recorded wall-clock is the best of ``reps`` runs
    (min-of-N, the standard way to strip scheduler noise from a
    throughput figure on a shared machine).  Returns the history entry
    recorded for this run.
    """
    # Untimed warmup pass: a short run of the same workload on a throwaway
    # scenario triggers every lazy import and warms the interpreter.  The
    # timed runs below build a FRESH scenario with the same seed, so the
    # simulated results are unaffected.
    warm = scenarios.build(scenario)
    netperf.udp_stream(warm, msg_size=msg_size, duration=0.01)

    best = None
    for _ in range(max(1, reps)):
        WIRE_STATS.reset()  # count serialization work for this rep only
        NOTIFY_STATS.reset()  # and notify/suppression work likewise
        t0 = time.perf_counter()
        scn = scenarios.build(scenario)
        result = netperf.udp_stream(scn, msg_size=msg_size, duration=duration)
        wall = time.perf_counter() - t0
        rep_stats = trace.engine_stats(scn.sim, wall_s=wall)
        if best is None or wall < best[0]:
            best = (wall, rep_stats, result)
    _wall, stats, result = best
    entry = {
        "sha": _git_sha(),
        "date": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "reps": max(1, reps),
        "events": stats["events"],
        "sim_time": stats["sim_time"],
        "wall_s": round(stats["wall_s"], 4),
        "events_per_sec": round(stats["events_per_sec"], 1),
        "result": {
            "bytes_received": result.bytes_received,
            "mbps": result.mbps,
            "messages_sent": result.messages_sent,
            "drops": result.drops,
        },
        "serialization": stats["serialization"],
        "notify": stats["notify"],
    }
    history = _load_history(output)
    history.append(entry)
    payload = {
        "workload": {
            "scenario": scenario,
            "msg_size": msg_size,
            "duration": duration,
        },
        "history": history,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(report.format_engine_stats(stats))
    print(f"simulated: {result.mbps:,.1f} Mbit/s, {result.drops} drops")
    print(f"wrote {output} ({len(history)} history entries)")
    return entry


def test_engine_throughput(run_once, benchmark):
    entry = run_once(run)
    benchmark.extra_info["events"] = entry["events"]
    benchmark.extra_info["events_per_sec"] = entry["events_per_sec"]
    benchmark.extra_info["wall_s"] = entry["wall_s"]
    assert entry["events"] > 0
    assert entry["result"]["bytes_received"] > 0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default="xenloop")
    parser.add_argument("--msg-size", type=int, default=4096)
    parser.add_argument("--duration", type=float, default=0.5)
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--reps", type=int, default=3, help="timed reps; best wall-clock is recorded")
    args = parser.parse_args()
    run(args.scenario, args.msg_size, args.duration, args.output, reps=args.reps)


if __name__ == "__main__":
    main()
