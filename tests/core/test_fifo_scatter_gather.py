"""Scatter-gather FIFO I/O and the staging-buffer pool.

``push_vec`` must be byte-equivalent to joining the parts and calling
``push``; ``peek_view`` must expose the same bytes with zero copies
(two ring segments iff the entry wraps); ``BufferPool`` recycles
waiting-list staging buffers.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fifo import BufferPool, Fifo, fifo_pages_for_order
from repro.net.packet import WIRE_STATS
from repro.xen.page import SharedRegion


def make_fifo(k=9):
    region = SharedRegion(1, 1 + fifo_pages_for_order(k))
    return Fifo(region, k=k)


class TestPushVec:
    def test_vectored_entry_round_trips(self):
        fifo = make_fifo()
        assert fifo.push_vec((b"head", b"body", b"tail"), msg_type=2)
        assert fifo.pop() == (2, b"headbodytail")

    def test_matches_joined_push(self):
        parts = (b"\x01\x02", b"", b"abcdefg", b"\xff" * 9)
        vec, plain = make_fifo(), make_fifo()
        assert vec.push_vec(parts)
        assert plain.push(b"".join(parts))
        assert vec.pop() == plain.pop()

    def test_memoryview_parts(self):
        fifo = make_fifo()
        buf = bytearray(b"0123456789")
        assert fifo.push_vec((memoryview(buf)[:4], memoryview(buf)[4:]))
        assert fifo.pop() == (1, b"0123456789")

    def test_full_fifo_rejected(self):
        fifo = make_fifo(k=6)  # 64 slots -> 63 usable
        big = b"x" * (fifo.capacity_bytes - 8)
        assert fifo.push_vec((big[:10], big[10:]))
        assert not fifo.push_vec((b"y",))
        assert fifo.push_failures == 1

    def test_counts_fifo_bytes(self):
        fifo = make_fifo()
        before = WIRE_STATS.snapshot()
        fifo.push_vec((b"ab", b"cde"))
        fifo.pop()
        after = WIRE_STATS.snapshot()
        assert after["fifo_bytes_in"] - before["fifo_bytes_in"] == 5
        assert after["fifo_bytes_out"] - before["fifo_bytes_out"] == 5

    @settings(max_examples=50)
    @given(
        st.lists(
            st.lists(st.binary(min_size=0, max_size=64), min_size=1, max_size=4),
            min_size=1,
            max_size=20,
        )
    )
    def test_property_vectored_stream(self, entries):
        fifo = make_fifo()
        expected = []
        for parts in entries:
            joined = b"".join(parts)
            if fifo.push_vec(parts):
                expected.append(joined)
        got = []
        while True:
            entry = fifo.pop()
            if entry is None:
                break
            got.append(entry[1])
        assert got == expected


class TestPeekView:
    def test_contiguous_single_segment(self):
        fifo = make_fifo()
        fifo.push(b"hello world", msg_type=3)
        msg_type, segments, slots = fifo.peek_view()
        assert msg_type == 3
        assert len(segments) == 1
        assert bytes(segments[0]) == b"hello world"
        fifo.advance(slots)
        assert fifo.pop() is None

    def test_wrapping_entry_two_segments(self):
        fifo = make_fifo(k=6)
        cap = fifo.capacity_bytes
        # Fill most of the ring, drain it, then push an entry that must
        # wrap around the ring edge.
        first = bytes(range(256)) * 4
        first = first[: cap // 2 + 64]
        assert fifo.push(first)
        assert fifo.pop() == (1, first)
        second = bytes(reversed(range(200)))
        assert fifo.push(second)
        msg_type, segments, slots = fifo.peek_view()
        assert len(segments) == 2
        assert b"".join(bytes(s) for s in segments) == second
        # peek() must materialize the same bytes (single join).
        assert fifo.peek()[1] == second
        fifo.advance(slots)

    def test_views_alias_ring_until_advance(self):
        fifo = make_fifo()
        fifo.push(b"aaaa")
        _, segments, slots = fifo.peek_view()
        view = segments[0]
        assert bytes(view) == b"aaaa"
        # Zero-copy: the view reflects the live ring memory.
        assert view.obj is fifo._data_mv.obj
        del view, segments
        fifo.advance(slots)


class TestBufferPool:
    def test_miss_then_hit(self):
        pool = BufferPool()
        before = WIRE_STATS.snapshot()
        buf = pool.acquire(100)
        assert len(buf) == 100
        pool.release(buf)
        again = pool.acquire(80)
        assert again is buf  # recycled, large enough
        after = WIRE_STATS.snapshot()
        assert after["pool_misses"] - before["pool_misses"] == 1
        assert after["pool_hits"] - before["pool_hits"] == 1

    def test_too_small_buffers_skipped(self):
        pool = BufferPool()
        pool.release(bytearray(8))
        buf = pool.acquire(64)
        assert len(buf) == 64  # fresh allocation, the 8-byte one stays pooled
        assert len(pool) == 1

    def test_capacity_caps(self):
        pool = BufferPool(max_buffers=2, max_buffer_bytes=128)
        for _ in range(3):
            pool.release(bytearray(16))
        assert len(pool) == 2  # overflow dropped
        pool_big = BufferPool(max_buffers=4, max_buffer_bytes=128)
        pool_big.release(bytearray(4096))
        assert len(pool_big) == 0  # oversized dropped
