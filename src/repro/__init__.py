"""XenLoop reproduction.

A discrete-event-simulated reproduction of *XenLoop: a transparent high
performance inter-VM network loopback* (Wang, Wright, Gopalan; Cluster
Computing 2009), including the Xen substrate (grant tables, event
channels, XenStore, split drivers, Dom0 bridge), a Linux-like guest
network stack with netfilter hooks, the XenLoop module itself, and the
paper's full benchmark suite.

Quickstart::

    from repro import scenarios
    from repro.workloads import pingpong

    scn = scenarios.xenloop()
    scn.warmup()
    result = pingpong.flood_ping(scn, count=100)
    print(result.rtt_us)
"""

from repro.calibration import DEFAULT_COSTS, CostModel

__version__ = "0.1.0"

__all__ = ["CostModel", "DEFAULT_COSTS", "__version__"]
