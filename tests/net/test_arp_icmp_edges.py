"""ARP retry/timeout behaviour and ICMP edge cases."""

import pytest

from repro.net.addr import IPv4Addr
from repro.net.arp import ARP_RETRIES, ARP_TIMEOUT
from tests.conftest import run_gen


class TestArpRetries:
    def test_unanswered_resolve_retries_then_fails(self, sim, lan):
        a, _b, _switch = lan
        target = IPv4Addr("10.0.0.200")  # nobody home

        def resolve():
            return (yield from a.stack.arp.resolve(target))

        t0 = sim.now
        result = run_gen(sim, resolve(), timeout=60)
        assert result is None
        assert a.stack.arp.requests_sent == ARP_RETRIES
        assert sim.now - t0 >= ARP_RETRIES * ARP_TIMEOUT * 0.99

    def test_late_reply_wakes_waiter(self, sim, lan):
        a, b, _switch = lan
        # b answers only after the first timeout window: simulate by
        # inserting the mapping into a's cache mid-resolve.
        target = b.stack.ip
        result = {}

        def resolve():
            result["mac"] = yield from a.stack.arp.resolve(target)

        proc = sim.process(resolve())
        sim.run_until_complete(proc, timeout=10)
        assert result["mac"] == b.stack.primary_device().mac
        assert a.stack.arp.requests_sent >= 1

    def test_concurrent_resolvers_share_one_answer(self, sim, lan):
        a, b, _switch = lan
        results = []

        def resolve():
            mac = yield from a.stack.arp.resolve(b.stack.ip)
            results.append(mac)

        procs = [sim.process(resolve()) for _ in range(3)]
        for proc in procs:
            sim.run_until_complete(proc, timeout=10)
        assert len(set(results)) == 1

    def test_flush_forgets_entries(self, sim, lan):
        a, b, _switch = lan
        run_gen(sim, a.stack.arp.resolve(b.stack.ip))
        a.stack.arp.flush()
        assert a.stack.arp.lookup(b.stack.ip) is None


class TestIcmpEdges:
    def test_ident_wraps(self, host):
        icmp = host.stack.icmp
        icmp._next_ident = 0xFFFF
        first = icmp.alloc_ident()
        second = icmp.alloc_ident()
        assert first == 0xFFFF
        assert second == 1  # skips 0

    def test_duplicate_reply_ignored(self, sim, host):
        """A reply whose waiter already fired must not crash."""
        stack = host.stack

        def ping_twice():
            ident = stack.icmp.alloc_ident()
            waiter = yield from stack.icmp.send_echo(stack.ip, ident, 0)
            yield waiter
            # forge a second reply for the same (ident, seq)
            from repro.net.ethernet import IPPROTO_ICMP
            from repro.net.packet import IcmpHeader

            reply = IcmpHeader(IcmpHeader.ECHO_REPLY, 0, ident, 0)
            yield from stack.ipv4.output(stack.ip, IPPROTO_ICMP, reply, b"")
            yield sim.timeout(0.001)
            return True

        assert run_gen(sim, ping_twice())

    def test_unsolicited_reply_dropped(self, sim, host):
        from repro.net.ethernet import IPPROTO_ICMP
        from repro.net.packet import IcmpHeader

        def send_reply():
            reply = IcmpHeader(IcmpHeader.ECHO_REPLY, 0, 4242, 7)
            yield from host.stack.ipv4.output(host.stack.ip, IPPROTO_ICMP, reply, b"")

        run_gen(sim, send_reply())
        sim.run(until=sim.now + 0.01)  # no exception = pass

    def test_echo_counter(self, sim, host):
        before = host.stack.icmp.echoes_answered

        def ping():
            ident = host.stack.icmp.alloc_ident()
            waiter = yield from host.stack.icmp.send_echo(host.stack.ip, ident, 0)
            yield waiter

        run_gen(sim, ping())
        assert host.stack.icmp.echoes_answered == before + 1
