"""XenLoop control-message wire formats."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.protocol import (
    Announce,
    ChannelAck,
    ConnectRequest,
    CreateChannel,
    FullSync,
    PeerInfo,
    RosterDelta,
    WhoIs,
    parse_message,
)
from repro.net.addr import MacAddr

_entries = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=2**48 - 1).map(MacAddr),
    ),
    max_size=30,
)


class TestRoundtrips:
    def test_announce(self):
        msg = Announce(0, [(1, MacAddr(0x163E000001)), (2, MacAddr(0x163E000002))])
        back = parse_message(msg.to_bytes())
        assert isinstance(back, Announce)
        assert back.sender_domid == 0
        assert back.entries == msg.entries

    def test_announce_empty(self):
        back = parse_message(Announce(0, []).to_bytes())
        assert back.entries == []

    def test_connect_request(self):
        msg = ConnectRequest(7, MacAddr("00:16:3e:00:00:07"))
        back = parse_message(msg.to_bytes())
        assert isinstance(back, ConnectRequest)
        assert back.sender_domid == 7
        assert back.sender_mac == msg.sender_mac

    def test_create_channel(self):
        msg = CreateChannel(1, gref_out=11, gref_in=22, evtchn_port=3)
        back = parse_message(msg.to_bytes())
        assert isinstance(back, CreateChannel)
        assert (back.gref_out, back.gref_in, back.evtchn_port) == (11, 22, 3)

    def test_channel_ack(self):
        back = parse_message(ChannelAck(9).to_bytes())
        assert isinstance(back, ChannelAck)
        assert back.sender_domid == 9

    @given(entries=_entries)
    def test_announce_roundtrip_property(self, entries):
        back = parse_message(Announce(0, entries).to_bytes())
        assert back.entries == entries


class TestDeltaFrames:
    """Wire round-trips for the delta-discovery control frames."""

    def test_roster_delta(self):
        msg = RosterDelta(
            0,
            epoch=41,
            joins=[(3, MacAddr("00:16:3e:00:00:03"))],
            leaves=[(1, MacAddr("00:16:3e:00:00:01")), (2, MacAddr(0x163E000002))],
        )
        back = parse_message(msg.to_bytes())
        assert isinstance(back, RosterDelta)
        assert (back.sender_domid, back.epoch) == (0, 41)
        assert back.joins == msg.joins
        assert back.leaves == msg.leaves

    def test_roster_delta_empty(self):
        back = parse_message(RosterDelta(0, epoch=1, joins=[], leaves=[]).to_bytes())
        assert back.joins == [] and back.leaves == []

    def test_full_sync(self):
        msg = FullSync(0, epoch=7, entries=[(5, MacAddr("00:16:3e:00:00:05"))])
        back = parse_message(msg.to_bytes())
        assert isinstance(back, FullSync)
        assert back.epoch == 7
        assert back.entries == msg.entries

    def test_whois(self):
        msg = WhoIs(9, MacAddr("00:16:3e:00:00:02"))
        back = parse_message(msg.to_bytes())
        assert isinstance(back, WhoIs)
        assert (back.sender_domid, back.mac) == (9, msg.mac)

    def test_peer_info_found(self):
        msg = PeerInfo(0, MacAddr("00:16:3e:00:00:02"), domid=4, found=True)
        back = parse_message(msg.to_bytes())
        assert isinstance(back, PeerInfo)
        assert (back.mac, back.domid, back.found) == (msg.mac, 4, True)

    def test_peer_info_not_found(self):
        back = parse_message(
            PeerInfo(0, MacAddr("00:16:3e:00:00:99"), domid=0, found=False).to_bytes()
        )
        assert back.found is False

    @given(
        epoch=st.integers(min_value=0, max_value=2**32 - 1),
        joins=_entries,
        leaves=_entries,
    )
    def test_roster_delta_roundtrip_property(self, epoch, joins, leaves):
        back = parse_message(RosterDelta(0, epoch, joins, leaves).to_bytes())
        assert (back.epoch, back.joins, back.leaves) == (epoch, joins, leaves)

    @given(epoch=st.integers(min_value=0, max_value=2**32 - 1), entries=_entries)
    def test_full_sync_roundtrip_property(self, epoch, entries):
        back = parse_message(FullSync(0, epoch, entries).to_bytes())
        assert (back.epoch, back.entries) == (epoch, entries)


class TestMalformed:
    def test_short_message(self):
        with pytest.raises(ValueError):
            parse_message(b"\x00")

    def test_unknown_type(self):
        with pytest.raises(ValueError):
            parse_message(b"\x00\x63" + b"\x00" * 8)
