"""The producer-consumer descriptor ring shared by netfront and netback.

"The ring buffers are nothing but a standard lockless shared memory
data structure built on top of two primitives -- grant tables and event
channels" (paper Sect. 2).  A slot is occupied from the moment the
producer pushes a request until the producer consumes the matching
response, which is what bounds the number of packets in flight across
the driver boundary and gives the path its backpressure.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.engine import Event, Simulator

__all__ = ["RingFullError", "SlottedRing"]


class RingFullError(Exception):
    """push_request on a ring with no free slots."""
    pass


class SlottedRing:
    """Request/response ring; slots held until responses are consumed."""

    __slots__ = (
        "sim",
        "size",
        "_requests",
        "_responses",
        "outstanding",
        "_space_waiters",
        "total_requests",
        "req_event_armed",
        "rsp_event_armed",
    )

    def __init__(self, sim: Simulator, size: int):
        if size < 1:
            raise ValueError("ring needs at least one slot")
        self.sim = sim
        self.size = size
        self._requests: Deque[Any] = deque()
        self._responses: Deque[Any] = deque()
        #: slots held: queued requests + in-service + unconsumed responses.
        self.outstanding = 0
        self._space_waiters: Deque[Event] = deque()
        self.total_requests = 0
        # The shared-page "event indices" of the real ring protocol,
        # reduced to their boolean meaning: whether each side currently
        # wants a notification.  Only the side that *wants* the wakeup
        # ever writes its own flag (armed before sleeping, cleared on
        # wake); the other side reads it in its
        # RING_PUSH_*_AND_CHECK_NOTIFY moment and skips the notify
        # hypercall when the flag is clear.  Because the notifier never
        # clears the flag, a fault-injected lost notify is healed by the
        # next push -- the flag is still armed.
        #: netback wants a kick when requests are pushed (armed while its
        #: drain worker sleeps).
        self.req_event_armed = True
        #: netfront wants an upcall when responses are pushed (armed only
        #: while blocked on ring space -- completions are otherwise
        #: reclaimed lazily in the transmit loop, NAPI-style).
        self.rsp_event_armed = True

    def snapshot_state(self) -> dict:
        """Ring occupancy, counters, and notify-arming flags for the
        snapshot manifest (slot payloads are live objects owned by
        netfront/netback and are preserved by process-level fork)."""
        return {
            "size": self.size,
            "queued_requests": len(self._requests),
            "queued_responses": len(self._responses),
            "outstanding": self.outstanding,
            "space_waiters": len(self._space_waiters),
            "total_requests": self.total_requests,
            "req_event_armed": self.req_event_armed,
            "rsp_event_armed": self.rsp_event_armed,
        }

    # -- producer side (e.g. netfront tx) ---------------------------------
    @property
    def free_slots(self) -> int:
        """Slots available to the producer right now."""
        return self.size - self.outstanding

    def push_request(self, item: Any) -> None:
        """Producer: occupy a slot with a request (raises when full)."""
        if self.outstanding >= self.size:
            raise RingFullError("no free slots")
        self._requests.append(item)
        self.outstanding += 1
        self.total_requests += 1

    def wait_space(self) -> Event:
        """Event firing once at least one slot is free."""
        ev = self.sim.event(name="ring-space")
        if self.free_slots > 0:
            ev.succeed()
        else:
            self._space_waiters.append(ev)
        return ev

    def pop_response(self) -> Optional[Any]:
        """Producer: consume a response, freeing its slot."""
        if not self._responses:
            return None
        item = self._responses.popleft()
        self.outstanding -= 1
        self._wake_space()
        return item

    # -- consumer side (e.g. netback) ----------------------------------------
    def pop_request(self) -> Optional[Any]:
        """Consumer: take the oldest request (None when empty)."""
        if not self._requests:
            return None
        return self._requests.popleft()

    def push_response(self, item: Any) -> None:
        """Consumer: complete a request (slot frees at pop_response)."""
        self._responses.append(item)

    @property
    def has_requests(self) -> bool:
        """Whether any requests await the consumer."""
        return bool(self._requests)

    @property
    def has_responses(self) -> bool:
        """Whether any responses await the producer."""
        return bool(self._responses)

    def _wake_space(self) -> None:
        while self._space_waiters and self.free_slots > 0:
            ev = self._space_waiters.popleft()
            if not ev.triggered:
                ev.succeed()
                break
