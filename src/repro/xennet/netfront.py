"""Netfront: the guest-side half of the split driver.

The guest's ``vif`` Ethernet device.  Transmit requests are granted to
the driver domain and pushed onto the TX ring; receive packets arrive
from netback on the RX ring and are fed to the guest stack's softirq.

Per-packet grant-table traffic on the data path is *cost-modelled*
(``grant_entry_update`` per page at the sender, map/unmap hypercalls in
netback) rather than routed through the real
:class:`~repro.xen.grant_table.GrantTable` object -- the control-path
users of grants (XenLoop channel bootstrap) use the real table with
full semantics.  See DESIGN.md "simplifications".

Suspend/resume (for live migration) follows the paper's Sect. 3.4:
while suspended, outgoing packets are saved on a limbo list and the
senders stay blocked (backpressure, not loss); on resume the saved
packets are re-submitted through the new ring.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.net.devices import NetDevice
from repro.net.packet import Packet
from repro.sim.engine import Event
from repro.sim.resources import Store
from repro.xen.event_channel import NOTIFY_STATS
from repro.xen.page import PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover
    from repro.xen.domain import Domain
    from repro.xennet.ring import SlottedRing

__all__ = ["Netfront", "VifDevice"]


def pages_for(nbytes: int) -> int:
    """Number of 4 KiB pages a buffer of ``nbytes`` spans.

    Integer ceiling division: this sits on the per-packet cost path
    (netfront tx_cost, netback map/copy), so no float round-trip.
    """
    if nbytes <= 0:
        return 1
    return -(-nbytes // PAGE_SIZE)


class VifDevice(NetDevice):
    """The paravirtual network interface exposed to the guest stack."""

    def __init__(self, netfront: "Netfront", name: str, mac, mtu: int = 1500):
        # gso=True: netfront advertises TSO, so TCP hands it super-segments.
        super().__init__(name, mac, mtu=mtu, gso=True)
        self.netfront = netfront

    def tx_cost(self, packet: Packet) -> float:
        """Ring request build + per-page grant entries.

        The notify hypercall is NOT included here: since the transmit
        loop suppresses it whenever netback's drain worker is already
        awake, ``evtchn_send`` is charged at the notify site, only when
        the kick is actually sent.
        """
        costs = self.netfront.guest.costs
        npages = pages_for(packet.wire_len)
        # Ring request build + one grant entry per page (no hypercall at
        # the granting side).
        return costs.netfront_tx + costs.grant_entry_update * npages

    def rx_cost(self, packet: Packet) -> float:
        """Netfront per-packet receive bookkeeping."""
        return self.netfront.guest.costs.netfront_rx

    def queue_xmit(self, packet: Packet) -> Event:
        """Hand the frame to netfront's transmit queue."""
        return self.netfront.start_xmit(packet)


class Netfront:
    """Guest half of the split driver: vif device, rings, suspend/resume."""
    def __init__(self, guest: "Domain", vif_name: str):
        self.guest = guest
        self.vif = VifDevice(self, vif_name, guest.mac)
        # Wiring (rings, event channel, netback) is installed by
        # repro.xennet.setup.connect_vif.
        self.tx_ring: "SlottedRing | None" = None
        self.rx_store: Optional[Store] = None
        self.evtchn_port = None
        self.netback = None

        self.suspended = False
        self._limbo: deque[tuple[Packet, Event]] = deque()
        self._txq: deque[tuple[Packet, Event]] = deque()
        self._tx_kick = guest.sim.event(name="netfront-tx-kick")
        self._tx_worker = guest.spawn(self._tx_loop(), name="netfront-tx")
        self.tx_packets = 0
        self.rx_packets = 0
        #: the RX ring's "event index": whether the guest wants an upcall
        #: for newly delivered receive frames.  Armed except while the
        #: interrupt handler is draining; netback reads it at push time
        #: and suppresses the notify when clear.  Only the guest (the
        #: consumer) writes it, so a lost notify leaves it armed and the
        #: next frame's notify recovers.
        self.rx_event_armed = True

    # -- transmit ---------------------------------------------------------
    def start_xmit(self, packet: Packet) -> Event:
        """Called by the vif device in sender context.  The returned event
        fires once the packet occupies a TX ring slot (backpressure)."""
        from repro import trace

        trace.mark(packet, "netfront-tx", self.guest.sim.now)
        done = self.guest.sim.event(name="netfront-xmit")
        if self.suspended:
            self._limbo.append((packet, done))
            return done
        self._txq.append((packet, done))
        self._kick_tx()
        return done

    def _kick_tx(self) -> None:
        if not self._tx_kick.triggered:
            self._tx_kick.succeed()

    def _tx_loop(self):
        guest = self.guest
        costs = guest.costs
        while True:
            ring = self.tx_ring
            if ring is not None and ring.has_responses:
                # Lazy completion reclaim (NAPI netfront idiom): consume
                # finished responses opportunistically while transmitting,
                # so completions almost never need an interrupt.
                while ring.pop_response() is not None:
                    pass
            if not self._txq or self.suspended or ring is None:
                if ring is not None and ring.outstanding > 0:
                    # Going idle with slots still held: arm the response
                    # event index so the completions that reclaim them
                    # get an upcall, then make the final check for any
                    # that landed (suppressed) while we were unarmed.
                    ring.rsp_event_armed = True
                    if ring.has_responses:
                        ring.rsp_event_armed = False
                        continue  # loop top reclaims them
                self._tx_kick = guest.sim.event(name="netfront-tx-kick")
                yield self._tx_kick
                if ring is not None:
                    # Woken to transmit: completions go back to lazy
                    # reclaim in this loop.
                    ring.rsp_event_armed = False
                continue
            if ring.free_slots == 0:
                # Blocked on ring space: arm the response event index,
                # then make the final check for completions that landed
                # while we were unarmed (those sent no upcall) before
                # actually sleeping.
                ring.rsp_event_armed = True
                if ring.has_responses:
                    ring.rsp_event_armed = False
                    continue  # loop top reclaims them
                yield ring.wait_space()
                continue
            packet, done = self._txq.popleft()
            ring.push_request(packet)
            self.tx_packets += 1
            self.vif.count_tx(packet)
            done.succeed()
            # RING_PUSH_REQUESTS_AND_CHECK_NOTIFY: kick the driver domain
            # only if its drain worker advertised it is (going) asleep.
            # The armed flag is netback's to clear -- leaving it set means
            # a fault-injected lost notify is retried by the next push.
            port = self.evtchn_port
            if ring.req_event_armed:
                NOTIFY_STATS.ring_notifies += 1
                yield guest.exec(costs.evtchn_send)
                if port is not None and not port.closed:
                    guest.machine.hypervisor.evtchn.notify(port)
            else:
                NOTIFY_STATS.ring_suppressed += 1
                if port is not None:
                    port.notifies_suppressed += 1

    # -- interrupt (virq) handler ------------------------------------------
    def on_interrupt(self) -> None:
        """Runs in guest context after virq_entry is charged: drain RX
        packets into the stack backlog and consume TX completions.

        Follows the suppression protocol's consumer side: disarm the RX
        event index while draining (netback then skips the notify for
        frames pushed mid-drain -- this loop will see them), re-arm, and
        make the final occupancy check before returning so nothing is
        stranded in the disarmed window.
        """
        while True:
            self.rx_event_armed = False
            store = self.rx_store
            if store is not None:
                while True:
                    found, packet = store.try_get()
                    if not found:
                        break
                    self.rx_packets += 1
                    self.vif.deliver_up(packet)
            ring = self.tx_ring
            if ring is not None and ring.has_responses:
                while ring.pop_response() is not None:
                    pass  # slot freed; wait_space waiters fire in the ring
                # Completions are reclaimed lazily by the tx loop; the
                # armed flag only needs to stay set while that loop is
                # blocked on space, and we just freed some.
                ring.rsp_event_armed = False
            self.rx_event_armed = True
            # Final check: anything delivered while we were disarmed was
            # pushed without a notify -- pick it up now instead of sleeping.
            if store is not None and len(store):
                continue
            break

    # -- migration support -----------------------------------------------
    def suspend(self) -> None:
        """Freeze transmission; queued packets move to the limbo list."""
        self.suspended = True
        # Anything still queued locally is saved for after the move.
        while self._txq:
            self._limbo.append(self._txq.popleft())

    def disconnect(self) -> None:
        """Tear down ring/event-channel wiring (netback side included)."""
        if self.netback is not None:
            self.netback.detach()
            self.netback = None
        if self.evtchn_port is not None:
            self.guest.machine.hypervisor.evtchn.close(self.evtchn_port)
            self.evtchn_port = None
        self.tx_ring = None
        self.rx_store = None

    def resume(self) -> None:
        """Re-submit saved packets through the (new) ring after migration."""
        self.suspended = False
        while self._limbo:
            packet, done = self._limbo.popleft()
            self._txq.append((packet, done))
        self._kick_tx()
