"""IPv4 edge cases: reassembly timeouts, routing, malformed input."""

import pytest

from repro.net.addr import IPv4Addr
from repro.net.ethernet import IPPROTO_UDP
from repro.net.ipv4 import FRAG_TIMEOUT, Reassembler, RoutingError
from repro.net.packet import IPv4Header, Packet
from repro.net.stack import NetworkStack
from repro.net.node import Node
from repro.calibration import DEFAULT_COSTS
from repro.sim.resources import CPUCores


def make_fragment(sim_ignored, ident, offset, payload, more):
    ip = IPv4Header(
        src=IPv4Addr("10.0.0.1"),
        dst=IPv4Addr("10.0.0.2"),
        proto=IPPROTO_UDP,
        ident=ident,
        frag_offset=offset,
        more_frags=more,
    )
    pkt = Packet(payload=payload, ip=ip)
    pkt.ip.total_length = pkt.l3_len
    return pkt


class TestReassembler:
    def test_in_order_reassembly(self, sim):
        r = Reassembler(sim)
        from repro.net.packet import UdpHeader

        body = UdpHeader(1, 2, 8 + 24).to_bytes() + bytes(range(24))
        assert r.add(make_fragment(sim, 7, 0, body[:16], True)) is None
        full = r.add(make_fragment(sim, 7, 16, body[16:], False))
        assert full is not None
        assert full.payload == bytes(range(24))
        assert r.completed == 1

    def test_out_of_order_reassembly(self, sim):
        r = Reassembler(sim)
        from repro.net.packet import UdpHeader

        body = UdpHeader(1, 2, 8 + 24).to_bytes() + bytes(range(24))
        assert r.add(make_fragment(sim, 8, 16, body[16:], False)) is None
        full = r.add(make_fragment(sim, 8, 0, body[:16], True))
        assert full is not None and full.payload == bytes(range(24))

    def test_interleaved_datagrams_keyed_separately(self, sim):
        r = Reassembler(sim)
        from repro.net.packet import UdpHeader

        body_a = UdpHeader(1, 2, 8 + 8).to_bytes() + b"AAAAAAAA"
        body_b = UdpHeader(1, 2, 8 + 8).to_bytes() + b"BBBBBBBB"
        assert r.add(make_fragment(sim, 1, 0, body_a[:8], True)) is None
        assert r.add(make_fragment(sim, 2, 0, body_b[:8], True)) is None
        full_b = r.add(make_fragment(sim, 2, 8, body_b[8:], False))
        full_a = r.add(make_fragment(sim, 1, 8, body_a[8:], False))
        assert full_a.payload == b"AAAAAAAA"
        assert full_b.payload == b"BBBBBBBB"

    def test_stale_buffers_purged(self, sim):
        r = Reassembler(sim)
        r.add(make_fragment(sim, 9, 0, bytes(16), True))  # never completed
        assert r.pending == 1
        sim.run(until=FRAG_TIMEOUT + 1)
        # purge happens on the next fragment arrival (any fragment --
        # see tests/net/test_leak_fixes.py for the incomplete-add case)
        from repro.net.packet import UdpHeader

        body = UdpHeader(1, 2, 8 + 8).to_bytes() + bytes(8)
        r.add(make_fragment(sim, 10, 0, body[:8], True))
        r.add(make_fragment(sim, 10, 8, body[8:], False))
        assert r.timed_out == 1
        assert r.pending == 0

    def test_missing_middle_fragment_incomplete(self, sim):
        r = Reassembler(sim)
        assert r.add(make_fragment(sim, 11, 0, bytes(16), True)) is None
        assert r.add(make_fragment(sim, 11, 32, bytes(8), False)) is None
        assert r.completed == 0


class TestRouting:
    def _host(self, sim, gateway=None):
        node = Node(sim, CPUCores(sim, 1), DEFAULT_COSTS, "h")
        NetworkStack(node, IPv4Addr("10.0.0.1"), prefix_len=24, gateway=gateway)
        return node

    def test_self_routes_to_loopback(self, sim):
        node = self._host(sim)
        dev, next_hop = node.stack.ipv4.route(IPv4Addr("10.0.0.1"))
        assert dev is node.stack.loopback
        assert next_hop is None

    def test_no_device_raises(self, sim):
        node = self._host(sim)
        with pytest.raises(RoutingError):
            node.stack.ipv4.route(IPv4Addr("10.0.0.2"))

    def test_off_subnet_without_gateway_raises(self, sim, lan):
        a, _b, _switch = lan
        with pytest.raises(RoutingError):
            a.stack.ipv4.route(IPv4Addr("192.168.9.9"))

    def test_gateway_used_off_subnet(self, sim, lan):
        a, b, _switch = lan
        a.stack.gateway = b.stack.ip
        dev, next_hop = a.stack.ipv4.route(IPv4Addr("192.168.9.9"))
        assert next_hop == b.stack.ip
        assert dev is a.stack.primary_device()

    def test_on_subnet_next_hop_is_destination(self, sim, lan):
        a, b, _switch = lan
        dev, next_hop = a.stack.ipv4.route(b.stack.ip)
        assert next_hop == b.stack.ip


class TestInputValidation:
    def test_packet_for_other_host_dropped(self, sim, lan):
        a, b, _switch = lan
        from tests.conftest import run_gen

        # craft a unicast frame to b's MAC but a third party's IP
        from repro.net.ethernet import ETH_P_IP, IPPROTO_UDP
        from repro.net.packet import EthHeader, UdpHeader

        pkt = Packet(
            payload=b"zz",
            l4=UdpHeader(1, 2, 10),
            ip=IPv4Header(a.stack.ip, IPv4Addr("10.0.0.77"), IPPROTO_UDP),
            eth=EthHeader(b.stack.primary_device().mac, a.stack.primary_device().mac, ETH_P_IP),
        )
        pkt.ip.total_length = pkt.l3_len
        dropped_before = b.stack.ipv4.dropped

        def send():
            dev = a.stack.primary_device()
            yield a.exec(dev.tx_cost(pkt))
            yield dev.queue_xmit(pkt)

        run_gen(sim, send())
        sim.run(until=sim.now + 0.01)
        assert b.stack.ipv4.dropped == dropped_before + 1

    def test_unknown_protocol_dropped(self, sim, host):
        from tests.conftest import run_gen
        from repro.net.packet import IcmpHeader

        node = host

        def send():
            hdr = IcmpHeader(8, 0, 1, 1)
            yield from node.stack.ipv4.output(node.stack.ip, 199, hdr, b"?")

        dropped_before = node.stack.ipv4.dropped
        run_gen(sim, send())
        sim.run(until=sim.now + 0.01)
        assert node.stack.ipv4.dropped == dropped_before + 1
