"""Control-plane scaling bench: the thousand-guest cluster.

Not a paper figure: the paper's evaluation stops at a handful of
guests, but the roadmap's north star is a control plane that survives
three orders of magnitude more.  This bench builds reduced and full
variants of the ``xenloop_bigcluster`` scenario (delta discovery,
sparse rosters, per-guest channel budget) and records, per guest
count:

* engine events/sec over build + warmup + churn (the control plane IS
  the workload here -- there is no bulk data stream);
* control-plane message counts (scans, delta/full-sync frames, WhoIs
  queries) so O(changes)-per-scan behaviour is visible in the history;
* peak RSS, measured in a **forked child per size** so each figure is
  the high-water mark of exactly one cluster, not of the largest one
  measured earlier in the same process.

Entries append to ``BENCH_engine.json`` with ``kind="cluster_scale"``
and are grouped by ``n_guests`` in ``tools/check_bench_regression.py``,
so a 100-guest entry is never gated against the 1,000-guest one.

Run standalone (the recorded sweep)::

    PYTHONPATH=src python benchmarks/bench_cluster_scale.py

or as the CI smoke (`make bigcluster-smoke`): a single ~100-guest run
that asserts the scale invariants -- control frames O(1) per scan
(so total receptions are O(n), where announce mode would be O(n^2)),
channel tables bounded by the budget, sparse per-guest mappings --
and exits nonzero when any fails::

    PYTHONPATH=src python benchmarks/bench_cluster_scale.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import resource
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_engine.json"
DEFAULT_SIZES = (100, 300, 1000)

#: Discovery period for the bench (seconds, simulated).  The churn
#: schedule fires at t=0.5..1.5 s, so the default 5 s paper period
#: would batch every churn event into one scan; 0.2 s gives the
#: scanner a realistic chance to observe each change separately.
BENCH_DISCOVERY_PERIOD = 0.2


def _measure(n_guests: int, settle: float, seed: int) -> dict:
    """Build + warm up + churn one bigcluster; return the raw figures.

    Runs inside the forked child (see :func:`_measure_forked`) so the
    returned ``peak_rss_kb`` is this cluster's high-water mark alone.
    """
    from repro.calibration import DEFAULT_COSTS
    from repro.scenarios import bigcluster_spec

    costs = DEFAULT_COSTS.replace(discovery_period=BENCH_DISCOVERY_PERIOD)
    t0 = time.perf_counter()
    scn = bigcluster_spec(n_guests=n_guests).build(costs, seed=seed)
    build_wall = time.perf_counter() - t0
    scn.warmup()
    scn.run_churn(settle=settle)
    wall = time.perf_counter() - t0

    budgets = [
        module.channel_budget
        for module in scn.modules.values()
        if module.channel_budget is not None
    ]
    channels_max = max(len(m.channels) for m in scn.modules.values())
    mapping_max = max(len(m.mapping) for m in scn.modules.values())
    control = {
        "scans": sum(d.scans for d in scn.discoveries),
        "frames": sum(d.announcements_sent for d in scn.discoveries),
        "deltas": sum(d.deltas_sent for d in scn.discoveries),
        "full_syncs": sum(d.full_syncs_sent for d in scn.discoveries),
        "quiescent_scans": sum(d.quiescent_scans for d in scn.discoveries),
        "whois_sent": sum(m.control.whois_sent for m in scn.modules.values()),
        "whois_answered": sum(d.whois_answered for d in scn.discoveries),
    }
    return {
        "n_guests": n_guests,
        "machines": len(scn.machines),
        "events": scn.sim.event_count,
        "sim_time": round(scn.sim.now, 4),
        "build_wall_s": round(build_wall, 4),
        "wall_s": round(wall, 4),
        "events_per_sec": round(scn.sim.event_count / wall, 1) if wall > 0 else 0.0,
        "control": control,
        "channels_max": channels_max,
        "channel_budget": max(budgets) if budgets else None,
        "mapping_max": mapping_max,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }


def _measure_forked(n_guests: int, settle: float, seed: int) -> dict:
    """Run :func:`_measure` in a forked child, piping the result back.

    A fresh child per size keeps ``ru_maxrss`` honest: the counter is a
    process-lifetime high-water mark, so measuring three cluster sizes
    in one process would report the largest cluster's footprint for all
    of them.  Falls back to in-process measurement where ``os.fork`` is
    unavailable.
    """
    if not hasattr(os, "fork"):
        entry = _measure(n_guests, settle, seed)
        entry["rss_shared_process"] = True
        return entry

    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:  # child
        status = 1
        try:
            os.close(read_fd)
            payload = json.dumps(_measure(n_guests, settle, seed)).encode()
            os.write(write_fd, payload)
            os.close(write_fd)
            status = 0
        finally:
            os._exit(status)
    os.close(write_fd)
    chunks = []
    while True:
        chunk = os.read(read_fd, 65536)
        if not chunk:
            break
        chunks.append(chunk)
    os.close(read_fd)
    _, wait_status = os.waitpid(pid, 0)
    if os.waitstatus_to_exitcode(wait_status) != 0 or not chunks:
        raise RuntimeError(
            f"cluster-scale child (n_guests={n_guests}) died without a result"
        )
    return json.loads(b"".join(chunks))


def check_scale_invariants(measured: dict) -> list[str]:
    """The smoke assertions: O(changes) discovery, bounded channels.

    Returns a list of human-readable violations (empty = all good).
    """
    problems = []
    control = measured["control"]
    n_machines = measured["machines"]
    # Delta discovery sends at most one RosterDelta plus one FullSync
    # per scan per machine: O(1) frames per scan, so total receptions
    # are O(n) over the run.  Announce mode sends one frame per guest
    # per scan (each flooded machine-wide): O(n) frames, O(n^2)
    # receptions.  The factor-2 bound cleanly separates the regimes for
    # any cluster bigger than a handful of guests.
    frame_ceiling = 2 * control["scans"] + n_machines
    if control["frames"] > frame_ceiling:
        problems.append(
            f"control frames not O(changes): {control['frames']} frames for "
            f"{control['scans']} scans (ceiling {frame_ceiling}; announce mode "
            f"would send ~{measured['n_guests'] // n_machines} per scan)"
        )
    if control["quiescent_scans"] == 0:
        problems.append(
            "no quiescent scans observed -- the empty-delta fast path never ran"
        )
    budget = measured["channel_budget"]
    if budget is not None and measured["channels_max"] > budget:
        problems.append(
            f"channel table exceeded budget: {measured['channels_max']} > {budget}"
        )
    # Sparse rosters: a guest resolves only the peers it talks to.
    if measured["mapping_max"] >= measured["n_guests"] // 2:
        problems.append(
            f"guest mapping not sparse: {measured['mapping_max']} entries for "
            f"{measured['n_guests']} guests"
        )
    return problems


def _git_sha() -> str:
    from bench_engine_throughput import _git_sha as sha  # noqa: PLC0415

    return sha()


def _append_entry(entry: dict, output: pathlib.Path) -> int:
    from bench_engine_throughput import _load_history  # noqa: PLC0415

    history = _load_history(output)
    history.append(entry)
    data = json.loads(output.read_text()) if output.exists() else {}
    workload = data.get("workload") if isinstance(data, dict) else None
    output.write_text(
        json.dumps({"workload": workload, "history": history}, indent=2) + "\n"
    )
    return len(history)


def run(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    settle: float = 2.0,
    output: pathlib.Path = DEFAULT_OUTPUT,
    seed: int = 7,
    record: bool = True,
) -> list[dict]:
    """Measure every size in a fresh child, print and append entries."""
    sha = _git_sha()
    date = time.strftime("%Y-%m-%dT%H:%M:%S")
    entries = []
    for n_guests in sizes:
        measured = _measure_forked(n_guests, settle, seed)
        entry = {
            "sha": sha,
            "date": date,
            "kind": "cluster_scale",
            **measured,
        }
        entries.append(entry)
        control = measured["control"]
        print(
            f"n={n_guests:>5}: {measured['events']:,} events in "
            f"{measured['wall_s']:.2f}s ({measured['events_per_sec']:,.0f}/s), "
            f"{control['frames']} ctrl frames / {control['scans']} scans "
            f"({control['quiescent_scans']} quiescent), "
            f"channels<= {measured['channels_max']}, "
            f"peak RSS {measured['peak_rss_kb'] / 1024:.0f} MB"
        )
        if record:
            count = _append_entry(entry, output)
            print(f"  wrote {output} ({count} history entries)")
    return entries


def run_smoke(
    n_guests: int = 100, output: pathlib.Path = DEFAULT_OUTPUT, record: bool = True
) -> int:
    """The CI smoke: one reduced-size run gated on the scale invariants."""
    entries = run(sizes=(n_guests,), output=output, record=record)
    problems = check_scale_invariants(entries[0])
    for problem in problems:
        print(f"FAIL: {problem}")
    if not problems:
        control = entries[0]["control"]
        print(
            f"OK: {control['frames']} control frames over {control['scans']} "
            f"scans at n={n_guests} -- O(changes) per scan, channels bounded"
        )
    return 1 if problems else 0


def test_cluster_scale(run_once, benchmark):
    entries = run_once(lambda: run(sizes=(100,), settle=1.0))
    entry = entries[0]
    benchmark.extra_info["events_per_sec"] = entry["events_per_sec"]
    benchmark.extra_info["control_frames"] = entry["control"]["frames"]
    benchmark.extra_info["peak_rss_kb"] = entry["peak_rss_kb"]
    assert not check_scale_invariants(entry)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES),
        help="guest counts to sweep (default: 100 300 1000)",
    )
    parser.add_argument("--settle", type=float, default=2.0,
                        help="simulated seconds to run past the last churn action")
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--smoke", action="store_true",
        help="single ~100-guest run asserting the scale invariants "
        "(exit 1 on violation)",
    )
    parser.add_argument(
        "--no-record", action="store_true",
        help="measure and assert without appending to the history file",
    )
    args = parser.parse_args()
    if args.smoke:
        return run_smoke(output=args.output, record=not args.no_record)
    run(tuple(args.sizes), args.settle, args.output, args.seed,
        record=not args.no_record)
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    sys.exit(main())
