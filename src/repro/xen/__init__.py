"""Simulated Xen hypervisor substrate.

Implements the primitives XenLoop is built from, with the semantics the
paper relies on: machine pages and contiguous shared regions, grant
tables (foreign access, map/unmap, transfer), interdomain event
channels with 1-bit pending coalescing, the XenStore hierarchical
key-value store with per-domain permissions and watches, domain
lifecycle (create/shutdown), and live migration between machines.
"""

from repro.xen.domain import Domain
from repro.xen.event_channel import EventChannelError, EventChannelSubsys
from repro.xen.grant_table import GrantError, GrantTable
from repro.xen.machine import Machine, XenMachine
from repro.xen.page import PAGE_SIZE, Page, SharedRegion
from repro.xen.xenstore import XenStore, XenStoreError

__all__ = [
    "Domain",
    "EventChannelError",
    "EventChannelSubsys",
    "GrantError",
    "GrantTable",
    "Machine",
    "PAGE_SIZE",
    "Page",
    "SharedRegion",
    "XenMachine",
    "XenStore",
    "XenStoreError",
]
