"""The bidirectional inter-VM channel -- data plane (paper Sect. 3.3).

Three components: two FIFOs (one per direction, each one descriptor
page + data pages of shared memory) and one event channel used for
data-available *and* space-available *and* teardown notifications --
the 1-bit semantics make all three share a port cleanly.

This module is purely the *transport*: allocating/granting/mapping the
shared pages, copying entries in and out of the FIFOs (send / park /
flush / drain), and releasing the resources again.  WHO does those
things WHEN -- the bootstrap handshake, retries, teardown causes,
migration -- lives in :mod:`repro.core.control`: every channel owns a
:class:`~repro.core.control.ChannelController` (``self.ctrl``) that
drives it through the table-driven lifecycle FSM.  The channel never
changes its own state; it reads ``self.state`` (a view of the FSM) to
gate the data path and reacts to lifecycle notifications through the
:class:`~repro.core.control.LifecycleHooks` interface (it starts its
drain worker on ``channel_connected``).

Data transfer is two copies -- sender memcpy into the FIFO, receiver
memcpy out -- which the paper selects over page sharing/transfer and
over receive-side zero-copy (see ``benchmarks/bench_ablation_zerocopy``
for the re-run of that design comparison).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro import trace
from repro.core.control import ChannelController, ChannelState, LifecycleHooks
from repro.core.fifo import Fifo, fifo_pages_for_order
from repro.core.protocol import CreateChannel
from repro.net.packet import Packet
from repro.xen.event_channel import NOTIFY_STATS
from repro.xen.grant_table import GrantError
from repro.xen.page import SharedRegion

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.module import XenLoopModule
    from repro.net.addr import MacAddr

__all__ = ["Channel", "ChannelDeadError", "ChannelState"]


class ChannelDeadError(Exception):
    """The channel died while a sender was blocked on it.

    Raised *into* processes waiting on :meth:`Channel.wait_waiting_space`
    when teardown empties the waiting list: the space they were waiting
    for will never appear, and leaving the event pending would park the
    waiter forever.  Callers (the socket-bypass sender) translate this
    into their own failure mode."""

#: FIFO entry type for an IPv4 packet.
ENTRY_IPV4 = 1
#: FIFO entry type for a socket-bypass stream frame (experimental
#: transport-layer variant; see repro.core.socket_bypass).
ENTRY_STREAM = 2


class _ZeroCopySource:
    """Pseudo-device for zero-copy inline injection at layer 3."""

    name = "xenloop-zerocopy"

    def rx_cost(self, packet) -> float:
        return 0.0


class Channel(LifecycleHooks):
    """One endpoint's view of the channel with a single co-resident peer."""

    def __init__(self, module: "XenLoopModule", peer_domid: int, peer_mac: "MacAddr"):
        self.module = module
        self.guest = module.guest
        self.peer_domid = peer_domid
        self.peer_mac = peer_mac
        #: smaller guest-ID acts as the listener (paper Fig. 3).
        self.is_listener = self.guest.domid < peer_domid
        #: receive-side zero-copy variant (ablation; see
        #: :meth:`_drain_one_zero_copy`).  Inherited from the module.
        self.zero_copy_rx = module.zero_copy_rx
        #: the control-plane driver; all lifecycle moves go through it.
        self.ctrl = ChannelController(self, hooks=(self, module))

        self.out_fifo: Optional[Fifo] = None
        self.in_fifo: Optional[Fifo] = None
        self.port = None  # our event-channel endpoint

        # Listener-side grant bookkeeping.
        self._granted_regions: list[SharedRegion] = []
        # Connector-side map bookkeeping: (gref, page) pairs.
        self._mapped_grefs: list[int] = []

        #: entries (msg_type, data, staging_buf) that did not fit in the
        #: FIFO, "placed in a waiting list to be sent once enough
        #: resources are available".  ``data`` is bytes or a memoryview
        #: into ``staging_buf``, a buffer borrowed from the module's
        #: BufferPool (returned once the entry leaves the list).
        self.waiting_list: deque[tuple[int, object, Optional[bytearray]]] = deque()
        self.waiting_bytes = 0
        self._waiting_space_waiters: deque = deque()
        #: optional handler for ENTRY_STREAM entries (socket bypass);
        #: called as handler(payload_bytes) in drain-worker context.
        self.stream_handler = None

        self._drain_kick = self.guest.sim.event(name="xl-drain-kick")
        self._drain_worker = None

        # Statistics.
        self.pkts_sent = 0
        self.bytes_sent = 0
        self.pkts_received = 0
        self.bytes_received = 0
        self.notifies = 0
        #: sends whose data-available notify was skipped because the
        #: receiver had not advertised CONSUMER_WAITING.
        self.notifies_suppressed = 0
        #: drain-worker batched-pop counters (NAPI budget accounting).
        self.drain_batches = 0
        self.drain_entries = 0
        #: simulated time of the last packet in either direction (used by
        #: the module's optional idle-channel reaper).
        self.last_activity = self.guest.sim.now

        # Per-channel stats registry for trace.engine_stats: one list on
        # the simulator, in creation order (deterministic).
        sim = self.guest.sim
        registry = getattr(sim, "_xenloop_channels", None)
        if registry is None:
            registry = sim._xenloop_channels = []
        registry.append(self)

    @property
    def state(self) -> ChannelState:
        """Lifecycle state -- owned by the controller's FSM."""
        return self.ctrl.fsm.state

    def snapshot_state(self) -> dict:
        """Controller, FIFO contents, waiting list, and data counters
        for the snapshot manifest."""
        return {
            "peer_domid": self.peer_domid,
            "peer_mac": str(self.peer_mac),
            "is_listener": self.is_listener,
            "ctrl": self.ctrl.snapshot_state(),
            "out_fifo": self.out_fifo.snapshot_state() if self.out_fifo else None,
            "in_fifo": self.in_fifo.snapshot_state() if self.in_fifo else None,
            "waiting_list": len(self.waiting_list),
            "waiting_bytes": self.waiting_bytes,
            "pkts_sent": self.pkts_sent,
            "bytes_sent": self.bytes_sent,
            "pkts_received": self.pkts_received,
            "bytes_received": self.bytes_received,
            "notifies": self.notifies,
            "notifies_suppressed": self.notifies_suppressed,
            "drain_batches": self.drain_batches,
            "drain_entries": self.drain_entries,
            "last_activity": self.last_activity,
        }

    # ------------------------------------------------------------------
    # Control-plane compatibility surface (delegates to the controller)
    # ------------------------------------------------------------------
    def listener_start(self):
        return self.ctrl.listener_start()

    def connector_complete(self, msg: CreateChannel):
        return self.ctrl.connector_complete(msg)

    def on_channel_ack(self) -> None:
        self.ctrl.on_channel_ack()

    def teardown(self):
        return self.ctrl.teardown()

    # ------------------------------------------------------------------
    # LifecycleHooks: data-plane reactions to control-plane transitions
    # ------------------------------------------------------------------
    def channel_connected(self, channel: "Channel") -> None:
        self._start_drain_worker()

    # ------------------------------------------------------------------
    # Transport setup -- listener side (called by the controller)
    # ------------------------------------------------------------------
    def create_listener_transport(self):
        """Allocate and grant the FIFO pages and the unbound event
        channel (generator, guest context).  Returns the CREATE_CHANNEL
        message describing them."""
        guest = self.guest
        costs = guest.costs
        k = self.module.fifo_order
        n_data = fifo_pages_for_order(k)

        # Allocate and initialize the two FIFOs in our own memory.
        region_out = SharedRegion(guest.domid, 1 + n_data)
        region_in = SharedRegion(guest.domid, 1 + n_data)
        self.out_fifo = Fifo(region_out, k=k)
        self.in_fifo = Fifo(region_in, k=k)
        self._granted_regions = [region_out, region_in]

        # Grant every page to the connector; data-page grefs go into the
        # descriptor pages, descriptor-page grefs go into the message.
        table = guest.grant_table
        yield guest.exec(costs.grant_entry_update * 2 * (1 + n_data))
        desc_grefs = []
        for region, fifo in ((region_out, self.out_fifo), (region_in, self.in_fifo)):
            grefs = [table.grant_foreign_access(self.peer_domid, p) for p in region.pages]
            fifo.store_grefs(grefs[1:])
            desc_grefs.append(grefs[0])

        # Event channel: unbound port the connector will bind to.
        evtchn = guest.machine.hypervisor.evtchn
        self.port = evtchn.alloc_unbound(guest.domid, self.peer_domid)
        evtchn.set_handler(self.port, self._on_event)

        return CreateChannel(
            sender_domid=guest.domid,
            gref_out=desc_grefs[0],
            gref_in=desc_grefs[1],
            evtchn_port=self.port.port,
        )

    def discard_listener_transport(self) -> None:
        """Release a never-connected listener transport (bootstrap
        abort): close the port, revoke the grants, free the regions.
        Synchronous; the controller charges the grant-update cost."""
        guest = self.guest
        if self.port is not None:
            guest.machine.hypervisor.evtchn.close(self.port)
            self.port = None
        try:
            guest.grant_table.revoke_all_for(self.peer_domid)
        except GrantError:
            guest.grant_table.revoke_all_for(self.peer_domid, force=True)
        self._granted_regions = []
        self.out_fifo = self.in_fifo = None

    # ------------------------------------------------------------------
    # Transport setup -- connector side (called by the controller)
    # ------------------------------------------------------------------
    def map_connector_transport(self, peer_table, msg: CreateChannel):
        """Map the listener's FIFO pages and bind the event channel
        (generator, guest context).  Raises on any mapping/bind failure;
        the controller disengages and records MAP_FAILED."""
        guest = self.guest
        costs = guest.costs
        # Map the two descriptor pages.
        yield guest.exec(costs.hypercall + 2 * costs.grant_map_page)
        desc_out_page = peer_table.map_grant(msg.gref_out, guest.domid)
        desc_in_page = peer_table.map_grant(msg.gref_in, guest.domid)
        self._mapped_grefs += [msg.gref_out, msg.gref_in]

        # The listener's "out" FIFO is our "in" FIFO and vice versa.
        fifo_in = Fifo(desc_out_page.region)
        fifo_out = Fifo(desc_in_page.region)

        # Map the data pages named inside each descriptor page.
        for fifo in (fifo_in, fifo_out):
            grefs = fifo.load_grefs()
            yield guest.exec(costs.hypercall + len(grefs) * costs.grant_map_page)
            for gref in grefs:
                peer_table.map_grant(gref, guest.domid)
                self._mapped_grefs.append(gref)

        evtchn = guest.machine.hypervisor.evtchn
        self.port = evtchn.bind_interdomain(guest.domid, self.peer_domid, msg.evtchn_port)
        evtchn.set_handler(self.port, self._on_event)

        self.in_fifo = fifo_in
        self.out_fifo = fifo_out

    # ------------------------------------------------------------------
    # Data transfer
    # ------------------------------------------------------------------
    def fits(self, nbytes: int) -> bool:
        """Whether a payload of ``nbytes`` can ever fit the outgoing FIFO."""
        return self.out_fifo is not None and self.out_fifo.fits(nbytes)

    def send_packet(self, packet: Packet, precharge: float = 0.0):
        """Copy one L3 packet into the outgoing FIFO (generator, sender
        context).  Returns True when the channel took the packet (into
        the FIFO or onto the waiting list, flushed on space-available
        notifications) and False when the channel is unusable -- the
        caller then lets the packet continue down the standard path.

        Scatter-gather: the packet's wire format goes in as header and
        payload views (or the packet's cached serialization, when one is
        valid) written straight into the ring -- no joined intermediate
        bytes object on this path."""
        trace.mark(packet, "xenloop-fifo-push", self.guest.sim.now)
        taken = yield from self.send_entry_parts(
            ENTRY_IPV4, packet.to_l3_parts(), precharge
        )
        return taken

    def send_entry(self, msg_type: int, data: bytes):
        """Copy one pre-joined typed entry into the outgoing FIFO
        (generator, sender context)."""
        taken = yield from self.send_entry_parts(msg_type, (data,))
        return taken

    def send_entry_parts(self, msg_type: int, parts, precharge: float = 0.0):
        """Copy one typed entry -- given as a sequence of buffer views
        forming its wire format -- into the outgoing FIFO (generator,
        sender context).  The base module sends ENTRY_IPV4 packets; the
        experimental socket-bypass variant sends ENTRY_STREAM frames.
        ``precharge`` is extra caller-side CPU work (e.g. the module's
        hash-table lookup) folded into the entry's first charge so the
        combination costs one calendar entry instead of two.

        The shared ACTIVE flag is re-checked right before the copy: a
        peer tearing down (migration, shutdown) clears it in the shared
        descriptor page, and anything we would push after its final
        drain would be lost.  Checking flag-then-push without an
        intervening yield point mirrors the real module's
        check-under-the-producer-lock.

        Notification suppression (RING_PUSH_REQUESTS_AND_CHECK_NOTIFY
        shape): after the push lands, the receiver's CONSUMER_WAITING
        flag in the shared descriptor is read -- with no yield point in
        between, so the check pairs atomically against the receiver's
        arm-then-recheck -- and the notify hypercall is issued only when
        the flag is armed.  The flag is the receiver's to clear; a
        fault-injected lost notify leaves it armed, so the next push
        retries."""
        guest = self.guest
        costs = guest.costs
        if not self._usable():
            return False
        nbytes = 0
        for part in parts:
            nbytes += len(part)
        yield guest.exec(precharge + costs.xenloop_fifo_op + costs.copy_cost(nbytes))
        if not self._usable():
            return False
        if self.waiting_list:
            # Preserve ordering behind already-waiting entries.
            self._park(msg_type, parts, nbytes)
            self.out_fifo.set_producer_waiting()
            return True
        out_fifo = self.out_fifo
        if out_fifo.push_vec(parts, msg_type):
            self.pkts_sent += 1
            self.bytes_sent += nbytes
            self.last_activity = guest.sim.now
            if out_fifo.consumer_waiting:
                self.notifies += 1
                NOTIFY_STATS.fifo_notifies += 1
                yield guest.exec(costs.evtchn_send)
                if self.port is not None and not self.port.closed:
                    guest.machine.hypervisor.evtchn.notify(self.port)
            else:
                self.notifies_suppressed += 1
                NOTIFY_STATS.fifo_suppressed += 1
                if self.port is not None:
                    self.port.notifies_suppressed += 1
        else:
            self._park(msg_type, parts, nbytes)
            self.out_fifo.set_producer_waiting()
        return True

    def _park(self, msg_type: int, parts, nbytes: int) -> None:
        """Stage an entry on the waiting list.  A single-bytes entry is
        parked as-is; a scatter-gather entry is joined into a buffer
        borrowed from the module's staging pool (returned to the pool
        when the entry leaves the list), so a backpressure burst reuses
        the same few buffers instead of allocating per parked packet."""
        if len(parts) == 1 and type(parts[0]) is bytes:
            self.waiting_list.append((msg_type, parts[0], None))
        else:
            buf = self.module.staging_pool.acquire(nbytes)
            pos = 0
            for part in parts:
                n = len(part)
                buf[pos : pos + n] = part
                pos += n
            self.waiting_list.append((msg_type, memoryview(buf)[:nbytes], buf))
        self.waiting_bytes += nbytes

    def _usable(self) -> bool:
        return (
            self.state is ChannelState.CONNECTED
            and self.out_fifo is not None
            and self.out_fifo.active
            and self.in_fifo.active
        )

    def _flush_waiting(self):
        """Push as many waiting entries as now fit (generator).

        The whole flush is charged as ONE CPU segment: one fifo-op per
        push attempt (including the final failed one), one copy per entry
        actually pushed, plus -- when the receiver has armed its waiting
        flag -- the single data-available notify.  Same total cost as
        charging each step separately, in one calendar entry.  The
        notify decision is made right after the pushes (no yield point),
        like :meth:`send_entry_parts`.
        """
        guest = self.guest
        costs = guest.costs
        cost = 0.0
        pushed = False
        while self.waiting_list and self._usable():
            msg_type, data, buf = self.waiting_list[0]
            cost += costs.xenloop_fifo_op
            if not self.out_fifo.push(data, msg_type):
                self.out_fifo.set_producer_waiting()
                break
            self.waiting_list.popleft()
            self.waiting_bytes -= len(data)
            self.pkts_sent += 1
            self.bytes_sent += len(data)
            cost += costs.copy_cost(len(data))
            if buf is not None:
                data = None  # drop the view before recycling its buffer
                self.module.staging_pool.release(buf)
            pushed = True
        if pushed:
            self.last_activity = guest.sim.now
            if self.out_fifo.consumer_waiting:
                self.notifies += 1
                NOTIFY_STATS.fifo_notifies += 1
                yield guest.exec(cost + costs.evtchn_send)
                if self.port is not None and not self.port.closed:
                    guest.machine.hypervisor.evtchn.notify(self.port)
            else:
                self.notifies_suppressed += 1
                NOTIFY_STATS.fifo_suppressed += 1
                if self.port is not None:
                    self.port.notifies_suppressed += 1
                yield guest.exec(cost)
            self._wake_waiting_space()
        elif cost:
            yield guest.exec(cost)

    def _wake_waiting_space(self) -> None:
        while self._waiting_space_waiters:
            waiter = self._waiting_space_waiters.popleft()
            if not waiter.triggered:
                waiter.succeed()

    def _fail_waiting_space(self) -> None:
        """Teardown path: waiters must learn the channel died, not be
        woken as if space appeared (their next send would silently park
        on a dead waiting list)."""
        while self._waiting_space_waiters:
            waiter = self._waiting_space_waiters.popleft()
            if not waiter.triggered:
                waiter.fail(
                    ChannelDeadError(
                        f"channel to dom{self.peer_domid} died while waiting for space"
                    )
                )

    def wait_waiting_space(self):
        """Event that fires when the waiting list drains a bit (used by
        the socket-bypass variant for sender flow control)."""
        waiter = self.guest.sim.event(name="xl-waitspace")
        self._waiting_space_waiters.append(waiter)
        return waiter

    # -- receive side ---------------------------------------------------
    def _on_event(self) -> None:
        """Event-channel upcall (already charged virq_entry).

        CONSUMER_WAITING is cleared here, at delivery, not when the
        drain worker actually resumes: the kick below guarantees a full
        drain pass, so peer pushes landing in the meantime can already
        suppress their notifies.
        """
        in_fifo = self.in_fifo
        if in_fifo is not None:
            in_fifo.clear_consumer_waiting()
        if not self._drain_kick.triggered:
            self._drain_kick.succeed()

    def _start_drain_worker(self) -> None:
        if self._drain_worker is None:
            self._drain_worker = self.guest.spawn(self._drain_loop(), name="xl-drain")

    def _drain_loop(self):
        """NAPI-style receive worker.

        On wakeup the shared CONSUMER_WAITING flag is (already) clear;
        the FIFO is drained in budget-bounded batches -- one aggregated
        CPU charge per batch -- with peer pushes during the drain
        suppressing their notifies.  Before sleeping the worker re-arms
        the flag and then makes the final occupancy re-check: a push
        that read the flag as clear necessarily landed before the
        re-check (both sides' flag/occupancy steps have no yield point
        between them), so no entry is ever stranded until the idle
        reaper fires.
        """
        guest = self.guest
        costs = guest.costs
        #: NAPI budget: max entries popped per charged batch; bounds the
        #: latency distortion from charging a batch's copies as one
        #: segment (cost total is exact -- copy_cost is linear in bytes).
        budget = costs.xenloop_napi_budget
        while self.state is ChannelState.CONNECTED:
            in_fifo = self.in_fifo
            if in_fifo is None:
                return
            in_fifo.clear_consumer_waiting()
            drained = 0
            while True:
                if self.zero_copy_rx:
                    advanced = yield from self._drain_one_zero_copy()
                    if not advanced:
                        break
                    drained += 1
                    continue
                # Pop a batch, charge ONE aggregated segment for the
                # FIFO bookkeeping + copies, then deliver the batch.
                burst = []
                cost = 0.0
                in_fifo = self.in_fifo
                while len(burst) < budget:
                    entry = in_fifo.pop()
                    if entry is None:
                        break
                    burst.append(entry)
                    cost += costs.xenloop_fifo_op + costs.copy_cost(len(entry[1]))
                if not burst:
                    break
                self.drain_batches += 1
                self.drain_entries += len(burst)
                NOTIFY_STATS.drain_batches += 1
                NOTIFY_STATS.drain_entries += len(burst)
                yield guest.exec(cost)
                now = guest.sim.now
                self.last_activity = now
                for msg_type, data in burst:
                    if msg_type == ENTRY_IPV4:
                        packet = Packet.from_l3_bytes(data)
                        packet.meta["via"] = "xenloop"
                        trace.adopt(packet, guest.sim)
                        trace.mark(packet, "xenloop-fifo-pop", now)
                        self.pkts_received += 1
                        self.bytes_received += len(data)
                        guest.stack.rx_network(packet)
                    elif msg_type == ENTRY_STREAM and self.stream_handler is not None:
                        self.pkts_received += 1
                        self.bytes_received += len(data)
                        self.stream_handler(data)
                drained += len(burst)
            # Space-available notification for a waiting producer --
            # unconditional: the peer parked entries and is expecting it.
            if drained and self.in_fifo.producer_waiting:
                self.in_fifo.clear_producer_waiting()
                self.notifies += 1
                NOTIFY_STATS.fifo_notifies += 1
                yield guest.exec(costs.evtchn_send)
                guest.machine.hypervisor.evtchn.notify(self.port)
            # Our own waiting list may be flushable now.
            if self.waiting_list:
                yield from self._flush_waiting()
            # Teardown initiated by the peer?
            if not self.in_fifo.active or not self.out_fifo.active:
                yield from self.ctrl.peer_fin()
                return
            # Re-arm, then the final pre-sleep occupancy re-check: an
            # entry pushed while we were draining (its notify suppressed)
            # must be found NOW, not when the idle reaper fires.
            in_fifo = self.in_fifo
            if in_fifo is None:
                return
            in_fifo.set_consumer_waiting()
            if not in_fifo.is_empty:
                continue  # loop top clears the flag and drains
            self._drain_kick = guest.sim.event(name="xl-drain-kick")
            yield self._drain_kick

    def _drain_one_zero_copy(self):
        """The receive-side zero-copy design alternative (Sect. 3.3,
        "comparing options for data transfer"): the packet is processed
        directly out of the FIFO and the slots are released only after
        the protocol stack has completed processing -- which holds
        "precious space in FIFO ... during protocol processing" and
        back-pressures the sender.  Implemented (and rejected) by the
        authors; reproduced here for the ablation benchmark."""
        guest = self.guest
        costs = guest.costs
        entry = self.in_fifo.peek_view()
        if entry is None:
            return False
        msg_type, segments, slots = entry
        yield guest.exec(costs.xenloop_fifo_op)  # no copy!
        if msg_type == ENTRY_IPV4:
            # The ring views stay valid until advance(); the bytes
            # materialize exactly once, inside from_l3_bytes.
            data = segments[0] if len(segments) == 1 else b"".join(segments)
            packet = Packet.from_l3_bytes(data)
            packet.meta["via"] = "xenloop-zerocopy"
            self.pkts_received += 1
            self.bytes_received += packet.l3_len
            self.last_activity = guest.sim.now
            # Protocol processing runs inline, with the FIFO space held...
            yield from guest.stack.ipv4.input(packet, _ZeroCopySource())
            # ...and stays held until the application's read copies the
            # payload out of the sk_buff that points into the FIFO.
            yield guest.sim.timeout(guest.costs.zerocopy_hold)
        self.in_fifo.advance(slots)
        return True

    # ------------------------------------------------------------------
    # Teardown resource actions (called by the controller)
    # ------------------------------------------------------------------
    def take_saved_packets(self) -> list[bytes]:
        """Flush the waiting list into a resendable snapshot: ENTRY_IPV4
        wire images survive (the module resends them via netfront);
        ENTRY_STREAM frames cannot be resent and are dropped."""
        saved = []
        pool = self.module.staging_pool
        for msg_type, data, buf in self.waiting_list:
            if msg_type == ENTRY_IPV4:
                # Materialize pooled views: the saved bytes outlive the
                # staging buffer, which goes back to the pool now.
                saved.append(bytes(data) if buf is not None else data)
            if buf is not None:
                data = None
                pool.release(buf)
        self.waiting_list.clear()
        self.waiting_bytes = 0
        self._fail_waiting_space()
        return saved

    def abort_waiting(self) -> int:
        """Empty the waiting list without saving anything (bootstrap
        abort / never-connected teardown): parked staging buffers go
        back to the module's pool and blocked senders are failed with
        :class:`ChannelDeadError`.  Returns the number of entries
        dropped."""
        pool = self.module.staging_pool
        dropped = len(self.waiting_list)
        for _msg_type, data, buf in self.waiting_list:
            if buf is not None:
                data = None  # drop the view before recycling its buffer
                pool.release(buf)
        self.waiting_list.clear()
        self.waiting_bytes = 0
        self._fail_waiting_space()
        return dropped

    def notify_stream_death(self) -> None:
        if self.stream_handler is not None:
            self.stream_handler(None)  # None signals "channel gone"

    def drain_remaining(self):
        """Receive whatever is still pending in the incoming FIFO
        (generator; teardown path)."""
        guest = self.guest
        costs = guest.costs
        while self.in_fifo is not None:
            entry = self.in_fifo.pop()
            if entry is None:
                return
            msg_type, data = entry
            yield guest.exec(costs.xenloop_fifo_op + costs.copy_cost(len(data)))
            if msg_type == ENTRY_IPV4:
                packet = Packet.from_l3_bytes(data)
                packet.meta["via"] = "xenloop"
                self.pkts_received += 1
                guest.stack.rx_network(packet)

    def disengage(self, notify_peer: bool):
        """Unmap/revoke shared memory and close our event-channel port.

        The steps are "slightly asymmetrical depending upon whether
        initially each guest bootstrapped in the role of a listener or a
        connector" (Sect. 3.3): the connector unmaps the listener's
        pages; the listener revokes its grant entries (forcing if the
        peer died without unmapping) and frees the FIFO memory.
        """
        guest = self.guest
        costs = guest.costs
        if self.is_listener:
            try:
                guest.grant_table.revoke_all_for(self.peer_domid)
            except GrantError:
                guest.grant_table.revoke_all_for(self.peer_domid, force=True)
            yield guest.exec(costs.grant_entry_update * max(1, len(self._granted_regions)))
            self._granted_regions = []
        else:
            peer_table = guest.machine.hypervisor.grant_tables.get(self.peer_domid)
            n = len(self._mapped_grefs)
            if n:
                yield guest.exec(costs.hypercall + n * costs.grant_unmap_page)
            if peer_table is not None:
                for gref in self._mapped_grefs:
                    try:
                        peer_table.unmap_grant(gref, guest.domid)
                    except GrantError:
                        pass  # listener already revoked (force path)
            self._mapped_grefs = []
        if self.port is not None:
            if notify_peer and self.port.peer is not None:
                yield guest.exec(costs.evtchn_send)
                guest.machine.hypervisor.evtchn.notify(self.port)
            guest.machine.hypervisor.evtchn.close(self.port)
            self.port = None
        self.out_fifo = self.in_fifo = None
        if self._drain_kick is not None and not self._drain_kick.triggered:
            self._drain_kick.succeed()  # let the drain worker observe CLOSED

    def __repr__(self) -> str:  # pragma: no cover
        role = "listener" if self.is_listener else "connector"
        return f"<Channel {self.guest.name}<->dom{self.peer_domid} {role} {self.state.value}>"
