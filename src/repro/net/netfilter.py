"""Netfilter-style hook chains.

XenLoop's whole transparency story rests on this mechanism (paper
Sect. 3.1): the module registers a hook *beneath the network layer*
(POST_ROUTING) and steals packets destined to co-resident VMs, while
applications and the rest of the stack remain unmodified.

Hook functions are **generator functions** so they can charge CPU and
perform channel operations synchronously in the sender's context::

    def hook(packet, dev):
        yield node.exec(cost)
        return Verdict.STOLEN

They must return a :class:`Verdict`; returning ``None`` is treated as
ACCEPT.
"""

from __future__ import annotations

import enum
from typing import Callable

__all__ = ["HookPoint", "NetfilterRegistry", "Verdict"]


class HookPoint(enum.Enum):
    #: outgoing packets, after routing, before fragmentation -- where
    #: the XenLoop module hooks (Linux NF_INET_POST_ROUTING).
    """Where in the stack a hook chain runs."""
    POST_ROUTING = "post_routing"
    #: incoming packets before IP processing.
    PRE_ROUTING = "pre_routing"


class Verdict(enum.Enum):
    """A hook's decision about the packet."""
    ACCEPT = "accept"
    #: the hook took ownership of the packet (XenLoop channel path).
    STOLEN = "stolen"
    DROP = "drop"


class NetfilterRegistry:
    """Per-stack hook registry, ordered by priority (lower runs first)."""

    def __init__(self):
        self._hooks: dict[HookPoint, list[tuple[int, Callable]]] = {p: [] for p in HookPoint}

    def register(self, point: HookPoint, fn: Callable, priority: int = 0) -> None:
        """Add a generator hook at ``point`` (lower priority runs first)."""
        chain = self._hooks[point]
        chain.append((priority, fn))
        chain.sort(key=lambda pair: pair[0])

    def unregister(self, point: HookPoint, fn: Callable) -> None:
        """Remove a previously registered hook (matched by equality)."""
        chain = self._hooks[point]
        for i, (_prio, hooked) in enumerate(chain):
            # == (not `is`): bound methods are recreated on each attribute
            # access but compare equal for the same object+function.
            if hooked == fn:
                del chain[i]
                return
        raise KeyError(f"hook {fn!r} not registered at {point}")

    def count(self, point: HookPoint) -> int:
        """Number of hooks registered at ``point``."""
        return len(self._hooks[point])

    def active(self, point: HookPoint) -> bool:
        """True when at least one hook is registered at ``point``.

        Lets per-frame call sites skip :meth:`run` entirely (generator
        creation plus a defensive chain copy) when the chain is empty --
        the common case for PRE_ROUTING.
        """
        return bool(self._hooks[point])

    def run(self, point: HookPoint, packet, dev):
        """Run the chain (generator).  Returns the final verdict."""
        for _prio, fn in list(self._hooks[point]):
            verdict = yield from fn(packet, dev)
            if verdict is None:
                verdict = Verdict.ACCEPT
            if verdict is not Verdict.ACCEPT:
                return verdict
        return Verdict.ACCEPT
