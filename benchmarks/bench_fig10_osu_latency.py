"""Figure 10: OSU MPI one-way latency versus message size."""

from repro import report
from repro.workloads import osu

from _bench_utils import SCENARIO_ORDER, build_warm, emit

SIZES = [1, 64, 512, 2048, 8192, 16384, 65536]


def _measure():
    series = {}
    for name in SCENARIO_ORDER:
        scn = build_warm(name)
        _s, values = osu.osu_latency(scn, sizes=SIZES).series()
        series[name] = values
    return series


def test_fig10_osu_latency(run_once, benchmark):
    series = run_once(_measure)
    emit(
        "fig10_osu_latency",
        report.format_series(
            "Fig. 10: OSU one-way latency (us) vs message size (B)",
            "msg_size",
            SIZES,
            series,
            precision=1,
        ),
    )
    benchmark.extra_info["series"] = {
        k: [round(v, 1) for v in vs] for k, vs in series.items()
    }
    # Shape: XenLoop latency below netfront and inter-machine at every
    # size, and latency grows with message size everywhere.
    for i in range(len(SIZES)):
        assert series["xenloop"][i] < series["netfront_netback"][i]
        assert series["xenloop"][i] < series["inter_machine"][i]
    for name in SCENARIO_ORDER:
        assert series[name][-1] > series[name][0]
