"""Property-based tests on the channel data path.

The invariant under test is the paper's implicit contract: whatever
mix of packet sizes the guests push through the XenLoop channel, every
packet arrives exactly once, byte-identical, in order, regardless of
FIFO pressure (waiting list) or size-based fallback to netfront.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import scenarios
from tests.core.conftest import FAST


@settings(max_examples=8, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=20000), min_size=1, max_size=40),
    fifo_order=st.sampled_from([9, 11, 13]),
)
def test_udp_datagram_stream_integrity(sizes, fifo_order):
    scn = scenarios.xenloop(FAST, fifo_order=fifo_order)
    scn.warmup(max_wait=10.0)
    sim = scn.sim
    server = scn.node_b.stack.udp_socket(7900, rcvbuf=1 << 24)
    client = scn.node_a.stack.udp_socket()

    payloads = [bytes([(i * 37 + j) % 256 for j in range(n)]) for i, n in enumerate(sizes)]

    def cli():
        for p in payloads:
            yield from client.sendto(p, (scn.ip_b, 7900))

    got = []

    def srv():
        for _ in payloads:
            data, _ = yield from server.recvfrom()
            got.append(data)

    sim.process(cli())
    proc = sim.process(srv())
    sim.run_until_complete(proc, timeout=120)
    # Exactly once and byte-identical, always.
    assert sorted(got) == sorted(payloads)
    # Ordering: packets on the *same* path stay in order.  A datagram too
    # big for the FIFO takes the netfront path and a later small one can
    # overtake it through the channel -- true of the real XenLoop too
    # (UDP makes no cross-path ordering promise); so the order invariant
    # is asserted per path.
    capacity = (1 << fifo_order) * 8 - 8
    ip_overhead = 28  # IP + UDP headers

    def via_channel(p):
        return len(p) + ip_overhead <= capacity

    assert [p for p in got if via_channel(p)] == [p for p in payloads if via_channel(p)]
    assert [p for p in got if not via_channel(p)] == [
        p for p in payloads if not via_channel(p)
    ]


@settings(max_examples=6, deadline=None)
@given(
    chunks=st.lists(st.binary(min_size=1, max_size=30000), min_size=1, max_size=12)
)
def test_tcp_stream_integrity_through_channel(chunks):
    scn = scenarios.xenloop(FAST)
    scn.warmup(max_wait=10.0)
    sim = scn.sim
    listener = scn.node_b.stack.tcp_listen(7901)
    total = b"".join(chunks)

    def srv():
        conn = yield from listener.accept()
        return (yield from conn.recv_exactly(len(total)))

    def cli():
        conn = yield from scn.node_a.stack.tcp_connect((scn.ip_b, 7901))
        for chunk in chunks:
            yield from conn.send(chunk)

    sim.process(cli())
    proc = sim.process(srv())
    assert sim.run_until_complete(proc, timeout=240) == total
