"""Reproducibility: same seed => identical results, bit for bit."""

import pytest

from repro import scenarios
from repro.workloads import netperf, pingpong

FAST = scenarios.DEFAULT_COSTS.replace(discovery_period=0.2, bootstrap_timeout=0.01)

#: pinned mesh results for seed=7 (see mesh_measure): two UDP streams
#: between distinct co-resident pairs of a 4-guest XenLoop mesh built
#: through the declarative topology layer.  If this moves, the spec
#: construction order (and hence the whole event sequence) changed.
GOLDEN_MESH = (
    (1269760, 502.57528436273225, 198, 0),
    (1236992, 501.1103562201159, 194, 0),
)


def measure(seed):
    scn = scenarios.xenloop(FAST, seed=seed)
    scn.warmup(max_wait=10.0)
    ping = pingpong.flood_ping(scn, count=50)
    rr = netperf.tcp_rr(scn, duration=0.02)
    return ping.rtt_us, ping.min_us, ping.max_us, rr.trans_per_sec, rr.p99_us


def mesh_measure(seed):
    scn = scenarios.xenloop_mesh(4, FAST, seed=seed)
    scn.warmup(max_wait=10.0)
    r12 = netperf.udp_stream(scn.view("vm1", "vm2"), duration=0.02, msg_size=8192)
    r34 = netperf.udp_stream(scn.view("vm3", "vm4"), duration=0.02, msg_size=8192)
    return (
        (r12.bytes_received, r12.mbps, r12.messages_sent, r12.drops),
        (r34.bytes_received, r34.mbps, r34.messages_sent, r34.drops),
    )


class TestDeterminism:
    def test_same_seed_identical_results(self):
        assert measure(seed=3) == measure(seed=3)

    def test_different_seed_different_jitter(self):
        a = measure(seed=1)
        b = measure(seed=2)
        # means are close (same model) but the jittered extremes differ
        assert a != b
        assert a[0] == pytest.approx(b[0], rel=0.2)

    def test_default_seed_stable(self):
        assert measure(seed=0) == measure(seed=0)

    def test_mesh_same_seed_identical_results(self):
        assert mesh_measure(seed=7) == mesh_measure(seed=7)

    def test_mesh_golden(self):
        """The 4-guest mesh (built via ClusterSpec) is pinned bit-for-bit."""
        assert mesh_measure(seed=7) == GOLDEN_MESH

    def test_zero_jitter_removes_all_randomness(self):
        costs = FAST.replace(virq_jitter=0.0)

        def run(seed):
            scn = scenarios.xenloop(costs, seed=seed)
            scn.warmup(max_wait=10.0)
            return pingpong.flood_ping(scn, count=30).rtt_us

        # with jitter off, even DIFFERENT seeds give identical timings
        assert run(seed=1) == run(seed=99)
