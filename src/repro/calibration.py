"""Cost model for the simulated testbed.

Every CPU/latency constant used anywhere in the simulation lives in
:class:`CostModel`.  The default values (:data:`DEFAULT_COSTS`) are
calibrated so that the four evaluation scenarios land near the paper's
Tables 1-3 on the authors' testbed (dual-core Pentium D 2.8 GHz, Xen
3.2, Linux 2.6.18, 1 Gbps Ethernet).  The *structure* of the model --
which operations cost what, and on whose CPU -- is the part that
matters; see DESIGN.md section 4.

All times are in seconds, all rates in bytes/second.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

__all__ = ["CostModel", "DEFAULT_COSTS"]


@dataclass(frozen=True)
class CostModel:
    """Calibrated cost constants for the simulated testbed."""

    # ------------------------------------------------------------------
    # Raw machine parameters
    # ------------------------------------------------------------------
    #: memcpy bandwidth (bytes/s); every data copy is charged at this rate.
    memcpy_bps: float = 1.7e9
    #: checksum/verify bandwidth (bytes/s) for TCP/UDP checksumming.
    checksum_bps: float = 3.5e9
    #: penalty added when a CPU core switches between domains (TLB/cache).
    domain_switch_penalty: float = 2.5e-6

    # ------------------------------------------------------------------
    # Hypervisor primitives (Xen substrate)
    # ------------------------------------------------------------------
    #: base cost of any hypercall, charged to the calling domain.
    hypercall: float = 0.7e-6
    #: extra cost of mapping one granted page (on top of the hypercall).
    grant_map_page: float = 0.9e-6
    #: extra cost of unmapping one granted page.
    grant_unmap_page: float = 0.7e-6
    #: extra cost of a page transfer (GNTTABOP_transfer), per page.
    grant_transfer_page: float = 1.1e-6
    #: cost of zeroing a page before sharing/transferring it (security).
    page_zero: float = 0.9e-6
    #: grant/revoke at the granting side: table write, NO hypercall.
    grant_entry_update: float = 0.15e-6
    #: event-channel send (notify) hypercall cost at the sender.
    evtchn_send: float = 0.7e-6
    #: latency from notify until the target vCPU's handler starts,
    #: assuming the target is idle (virtual IRQ delivery + scheduler).
    virq_delivery_latency: float = 9.0e-6
    #: relative jitter on virq delivery: the actual latency is uniform in
    #: ``virq_delivery_latency * [1 - j/2, 1 + j/2]`` (mean unchanged).
    #: Models the variance of upcall delivery depending on what the
    #: target vCPU is doing; this burstiness is what FIFO capacity
    #: absorbs in Fig. 5.
    virq_jitter: float = 0.5
    #: cost charged to the target domain for taking the virtual IRQ.
    virq_entry: float = 1.2e-6
    #: one XenStore operation (read/write/ls), charged to the caller.
    xenstore_op: float = 8.0e-6

    # ------------------------------------------------------------------
    # Guest/host network stack (per packet unless noted)
    # ------------------------------------------------------------------
    #: user/kernel crossing for one socket syscall (send/recv).
    syscall: float = 1.3e-6
    #: socket-layer bookkeeping per operation.
    socket_layer: float = 0.5e-6
    #: UDP transport processing per datagram.
    udp_layer: float = 1.0e-6
    #: TCP transport processing per segment (send or receive side).
    tcp_layer: float = 1.3e-6
    #: IPv4 layer per packet (route lookup, header build/verify).
    ip_layer: float = 0.5e-6
    #: ICMP processing per message.
    icmp_layer: float = 0.5e-6
    #: invoking one netfilter hook chain.
    netfilter_hook: float = 0.05e-6
    #: building/parsing one IP fragment beyond the first.
    ip_fragment: float = 0.45e-6
    #: neighbour-cache (ARP) lookup.
    arp_lookup: float = 0.05e-6
    #: process wakeup (scheduler) when data arrives for a blocked socket.
    process_wakeup: float = 3.0e-6

    # ------------------------------------------------------------------
    # Devices
    # ------------------------------------------------------------------
    #: loopback device per-packet cost (softirq reinjection).
    loopback_xmit: float = 1.0e-6
    #: physical wire rate (bytes/s) -- 1 Gbps Ethernet.
    wire_bps: float = 125e6
    #: per-frame overhead on the wire (preamble+IFG+CRC, bytes).
    wire_frame_overhead: int = 24
    #: store-and-forward switch latency per frame (plus serialization).
    switch_latency: float = 2.0e-6
    #: NIC driver per-frame transmit cost (descriptor + doorbell).
    nic_tx: float = 0.8e-6
    #: NIC receive interrupt/NAPI latency before the frame reaches the
    #: stack (models interrupt moderation on the testbed's e1000).
    nic_rx_latency: float = 40.0e-6
    #: NIC driver per-frame receive cost.
    nic_rx: float = 0.9e-6
    #: DMA bandwidth between NIC and memory (bytes/s).
    nic_dma_bps: float = 8.0e9

    # ------------------------------------------------------------------
    # Split driver (netfront/netback) and Dom0 bridge
    # ------------------------------------------------------------------
    #: netfront per-packet transmit bookkeeping (ring request build).
    netfront_tx: float = 1.0e-6
    #: netfront per-packet receive bookkeeping.
    netfront_rx: float = 1.1e-6
    #: netback per-packet processing (request parse, skb build).
    netback_per_packet: float = 1.6e-6
    #: scheduling latency before the driver domain's netback worker runs
    #: after an event-channel kick (credit-scheduler delay with three
    #: schedulable domains on two cores).
    dom0_wakeup_latency: float = 12.0e-6
    #: Dom0 software bridge per-frame forwarding cost.
    bridge_forward: float = 0.9e-6
    #: below this size netback copies into a pre-shared page instead of
    #: doing a page grant-transfer on the guest-receive path (bytes).
    netback_copy_threshold: int = 512
    #: ring size (slots) for netfront/netback rings.
    ring_size: int = 256

    # ------------------------------------------------------------------
    # XenLoop module
    # ------------------------------------------------------------------
    #: software-bridge lookup in the XenLoop hook, per packet.
    xenloop_lookup: float = 0.15e-6
    #: FIFO push/pop bookkeeping per packet (indices, metadata).
    xenloop_fifo_op: float = 0.3e-6
    #: NAPI-style weight of the channel's drain worker: max FIFO entries
    #: popped (and delivered) per charged batch before the worker yields
    #: the CPU segment.  Bounds the latency distortion of batched cost
    #: charging and caps how long the consumer runs with notifications
    #: disarmed (the CONSUMER_WAITING bit stays clear while draining).
    xenloop_napi_budget: int = 64
    #: domain-discovery scan period in Dom0 (seconds); paper: 5 s.
    discovery_period: float = 5.0
    #: zero-copy-receive ablation only: how long FIFO slots stay held
    #: after protocol processing until the application's read copies the
    #: payload out of the sk_buff that points into the FIFO (process
    #: wakeup + syscall + user copy under load).  This is the
    #: "back-pressure on the sender" the paper cites for rejecting the
    #: zero-copy design (Sect. 3.3).
    zerocopy_hold: float = 30.0e-6
    #: channel-bootstrap create_channel retry timeout (seconds).
    bootstrap_timeout: float = 0.05
    #: number of create_channel retries before giving up; paper: 3.
    bootstrap_retries: int = 3

    # ------------------------------------------------------------------
    # TCP model parameters
    # ------------------------------------------------------------------
    #: maximum GSO super-segment size on virtual/loopback devices (bytes).
    gso_max: int = 16384
    #: TCP receive window (bytes) -- fixed, no dynamic tuning.
    tcp_window: int = 262144
    #: MSS fallback when the device has no GSO (bytes of payload).
    mss: int = 1448
    #: retransmission timeout (fixed; Linux's minimum RTO is 200 ms).
    #: Loss comes from frames in flight during a live migration's
    #: downtime window and from bridge-path drops injected through the
    #: fault plan (``faults.PKT_LOSS``); the RTO recovers both.
    tcp_rto: float = 0.2
    #: congestion-control mode: ``"rfc"`` (slow start, AIMD, dup-ACK
    #: fast retransmit / NewReno-style fast recovery) or ``"fixed"``
    #: (the pre-congestion fixed-window sender: go-back-N on RTO only).
    tcp_congestion: str = "rfc"
    #: initial congestion window in MSS units (RFC 6928's IW10 would be
    #: 10).  0 -- the calibrated default -- starts cwnd wide open at
    #: ``tcp_window`` bytes, so on lossless paths cwnd never binds and
    #: traffic is bit-identical to the fixed-window model; congestion
    #: scenarios opt into a real slow start via ``replace()``.
    tcp_initial_cwnd: int = 0
    #: duplicate-ACK threshold for fast retransmit (RFC 5681: 3).
    tcp_dupack_threshold: int = 3

    # ------------------------------------------------------------------
    # Migration model
    # ------------------------------------------------------------------
    #: stop-and-copy downtime for a 512 MB guest on the testbed.
    migration_downtime: float = 0.12
    #: total live-migration duration (pre-copy phase included).
    migration_duration: float = 3.0

    def copy_cost(self, nbytes: int) -> float:
        """CPU time to copy ``nbytes`` (memcpy model)."""
        return nbytes / self.memcpy_bps

    def checksum_cost(self, nbytes: int) -> float:
        """CPU time to checksum ``nbytes``."""
        return nbytes / self.checksum_bps

    def wire_time(self, nbytes: int) -> float:
        """Serialization delay of one ``nbytes`` frame on the wire."""
        return (nbytes + self.wire_frame_overhead) / self.wire_bps

    def dma_cost(self, nbytes: int) -> float:
        """DMA transfer time between NIC and memory."""
        return nbytes / self.nic_dma_bps

    def replace(self, **kwargs) -> "CostModel":
        """Return a copy with the given fields overridden."""
        return dataclasses.replace(self, **kwargs)


#: Default calibrated model (see EXPERIMENTS.md for paper-vs-measured).
DEFAULT_COSTS = CostModel()
