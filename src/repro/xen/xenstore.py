"""XenStore: hierarchical key-value store with per-domain permissions.

XenLoop's soft-state discovery runs entirely through this store
(Sect. 3.2): each guest's module advertises willingness by writing
``/local/domain/<id>/xenloop``; the Dom0 discovery module -- the only
entity allowed to read across domains -- scans for those entries every
5 seconds; entries vanish when the module unloads, the guest shuts
down, or the guest migrates away.

Permission model (simplified from Xen but preserving what the paper
relies on):

* Dom0 may read/write/list/remove anywhere;
* an unprivileged domain may only operate under its own subtree
  ``/local/domain/<its-id>`` -- in particular it CANNOT read other
  guests' entries, which is exactly why discovery must live in Dom0.
"""

from __future__ import annotations

from typing import Callable, Optional

__all__ = ["XenStore", "XenStoreError", "PermissionError_"]

DOM0_ID = 0


class XenStoreError(Exception):
    """Missing path or malformed operation."""


class PermissionError_(XenStoreError):
    """Caller not allowed to touch that path."""


def _split(path: str) -> list[str]:
    if not path.startswith("/"):
        raise XenStoreError(f"XenStore paths are absolute: {path!r}")
    return [part for part in path.split("/") if part]


class _TreeNode:
    __slots__ = ("value", "children")

    def __init__(self):
        self.value: Optional[str] = None
        self.children: dict[str, "_TreeNode"] = {}


class XenStore:
    """Hierarchical key-value store with per-domain permissions and watches."""
    def __init__(self):
        self._root = _TreeNode()
        #: (path_prefix, callback) pairs; callback(path, action) with
        #: action in {"write", "rm"}.
        self._watches: list[tuple[str, Callable[[str, str], None]]] = []

    def snapshot_state(self) -> dict:
        """The full tree as nested ``{value, children}`` dicts, plus the
        watch count (callbacks are live objects; fork preserves them)."""

        def _node(node: _TreeNode) -> dict:
            return {
                "value": node.value,
                "children": {k: _node(v) for k, v in sorted(node.children.items())},
            }

        return {"tree": _node(self._root), "watches": len(self._watches)}

    # -- permissions -----------------------------------------------------
    @staticmethod
    def _check(domid: int, path: str) -> None:
        if domid == DOM0_ID:
            return
        own_prefix = f"/local/domain/{domid}"
        if path == own_prefix or path.startswith(own_prefix + "/"):
            return
        raise PermissionError_(f"dom{domid} may not access {path}")

    # -- operations --------------------------------------------------------
    def write(self, domid: int, path: str, value: str) -> None:
        """Write a value (permission-checked; fires matching watches)."""
        self._check(domid, path)
        node = self._root
        for part in _split(path):
            node = node.children.setdefault(part, _TreeNode())
        node.value = value
        self._fire(path, "write")

    def read(self, domid: int, path: str) -> str:
        """Read a value (permission-checked; raises if absent)."""
        self._check(domid, path)
        node = self._find(path)
        if node is None or node.value is None:
            raise XenStoreError(f"no value at {path}")
        return node.value

    def exists(self, domid: int, path: str) -> bool:
        """Whether a node exists (permission-checked)."""
        self._check(domid, path)
        return self._find(path) is not None

    def ls(self, domid: int, path: str) -> list[str]:
        """Sorted child names of a directory node (permission-checked)."""
        self._check(domid, path)
        node = self._find(path)
        if node is None:
            raise XenStoreError(f"no directory at {path}")
        return sorted(node.children)

    def rm(self, domid: int, path: str) -> None:
        """Remove the node and its whole subtree (no-op when absent)."""
        self._check(domid, path)
        parts = _split(path)
        if not parts:
            raise XenStoreError("cannot remove the root")
        node = self._root
        for part in parts[:-1]:
            node = node.children.get(part)
            if node is None:
                return
        if parts[-1] in node.children:
            del node.children[parts[-1]]
            self._fire(path, "rm")

    # -- watches -------------------------------------------------------------
    def watch(self, path_prefix: str, callback: Callable[[str, str], None]) -> None:
        """Register a callback fired on writes/removals under a prefix."""
        self._watches.append((path_prefix, callback))

    def unwatch(self, callback: Callable[[str, str], None]) -> None:
        """Remove a previously registered watch callback."""
        self._watches = [(p, cb) for (p, cb) in self._watches if cb is not callback]

    def _fire(self, path: str, action: str) -> None:
        for prefix, cb in list(self._watches):
            if path == prefix or path.startswith(prefix.rstrip("/") + "/"):
                cb(path, action)

    # -- internals -------------------------------------------------------
    def _find(self, path: str) -> Optional[_TreeNode]:
        node = self._root
        for part in _split(path):
            node = node.children.get(part)
            if node is None:
                return None
        return node
