"""BSD-style socket facade.

A thin, familiar wrapper over the stack's UDP and TCP layers so that
application code reads like ordinary (blocking) socket code.  All
blocking calls are generators, as everywhere in the simulation::

    sock = Socket(node, SOCK_STREAM)
    yield from sock.connect((peer_ip, 80))
    yield from sock.sendall(b"GET /")
    reply = yield from sock.recv(4096)

This is the "unmodified application" surface of the reproduction: the
workloads and examples program against it (or the layer APIs underneath
it) and never mention XenLoop -- transparency is the whole claim.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.net.addr import IPv4Addr

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node

__all__ = ["SOCK_DGRAM", "SOCK_STREAM", "Socket", "SocketError"]

SOCK_STREAM = 1
SOCK_DGRAM = 2


class SocketError(OSError):
    """Misuse of the socket facade (wrong type, closed, unbound...)."""
    pass


def _as_addr(addr) -> tuple[IPv4Addr, int]:
    ip, port = addr
    return (IPv4Addr(ip), int(port))


class Socket:
    """One socket, datagram or stream, in the familiar shape."""

    def __init__(self, node: "Node", kind: int = SOCK_STREAM):
        if node.stack is None:
            raise SocketError(f"{node.name} has no network stack")
        if kind not in (SOCK_STREAM, SOCK_DGRAM):
            raise ValueError(f"unknown socket type {kind}")
        self.node = node
        self.kind = kind
        self._udp = None  # UdpSocket
        self._conn = None  # TcpConnection or BypassConnection
        self._listener = None  # TcpListener
        self._bound_port: Optional[int] = None
        self._closed = False

    # -- setup ------------------------------------------------------------
    def bind(self, addr) -> None:
        """Bind to (ip, port); port 0 picks an ephemeral port for datagrams."""
        ip, port = _as_addr(addr)
        if ip.value not in (0, self.node.stack.ip.value):
            raise SocketError(f"cannot bind {self.node.name} to {ip}")
        if self.kind == SOCK_DGRAM:
            self._udp = self.node.stack.udp.socket(port)
            self._bound_port = self._udp.port
        else:
            self._bound_port = port

    def listen(self, backlog: int = 16) -> None:
        """Start accepting connections on the bound port (stream only)."""
        self._require(SOCK_STREAM)
        if self._bound_port is None:
            raise SocketError("listen() before bind()")
        self._listener = self.node.stack.tcp.listen(self._bound_port, backlog)

    def accept(self):
        """Generator: returns (Socket, peer_address)."""
        self._require(SOCK_STREAM)
        if self._listener is None:
            raise SocketError("accept() before listen()")
        conn = yield from self._listener.accept()
        child = Socket(self.node, SOCK_STREAM)
        child._conn = conn
        return child, (str(conn.remote[0]), conn.remote[1])

    def connect(self, addr):
        """Generator: blocking connect."""
        self._require(SOCK_STREAM)
        self._conn = yield from self.node.stack.tcp_connect(_as_addr(addr))
        return self

    # -- stream I/O ------------------------------------------------------
    def sendall(self, data: bytes):
        """Blocking stream send of the whole buffer (generator)."""
        self._require_connected()
        yield from self._conn.send(data)

    def recv(self, max_bytes: int):
        """Blocking stream receive of up to ``max_bytes`` (generator)."""
        self._require_connected()
        data = yield from self._conn.recv(max_bytes)
        return data

    def recv_exactly(self, n: int):
        """Blocking stream receive of exactly ``n`` bytes (generator)."""
        self._require_connected()
        data = yield from self._conn.recv_exactly(n)
        return data

    # -- datagram I/O -------------------------------------------------------
    def sendto(self, data: bytes, addr):
        """Send one datagram (generator); binds ephemerally on first use."""
        self._require(SOCK_DGRAM)
        if self._udp is None:
            self._udp = self.node.stack.udp.socket(0)
            self._bound_port = self._udp.port
        ok = yield from self._udp.sendto(data, _as_addr(addr))
        return ok

    def recvfrom(self):
        """Receive one datagram (generator); returns (data, (ip, port))."""
        self._require(SOCK_DGRAM)
        if self._udp is None:
            raise SocketError("recvfrom() on an unbound datagram socket")
        data, (ip, port) = yield from self._udp.recvfrom()
        return data, (str(ip), port)

    # -- teardown --------------------------------------------------------
    def close(self):
        """Generator (stream close needs simulated time for FIN)."""
        if self._closed:
            return
        self._closed = True
        if self._udp is not None:
            self._udp.close()
        if self._listener is not None:
            self._listener.close()
        if self._conn is not None:
            yield from self._conn.close()

    # -- introspection ------------------------------------------------------
    def getsockname(self) -> tuple[str, int]:
        """The local (ip, port) pair, port 0 if unbound."""
        return (str(self.node.stack.ip), self._bound_port or 0)

    @property
    def connected(self) -> bool:
        """True while an underlying stream connection is ESTABLISHED."""
        return self._conn is not None and self._conn.state == "ESTABLISHED"

    def _require(self, kind: int) -> None:
        if self._closed:
            raise SocketError("socket is closed")
        if self.kind != kind:
            want = "SOCK_STREAM" if kind == SOCK_STREAM else "SOCK_DGRAM"
            raise SocketError(f"operation requires {want}")

    def _require_connected(self) -> None:
        self._require(SOCK_STREAM)
        if self._conn is None:
            raise SocketError("socket is not connected")
