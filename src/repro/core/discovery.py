"""Dom0 Domain Discovery module (paper Sect. 3.2).

Every ``discovery_period`` (5 s) the module scans XenStore -- which
only Dom0 can read across domains -- for guests advertising a
``xenloop`` entry, collates their [guest-ID, MAC] identity pairs, and
announces them to the willing guests through the software bridge.
Guests absent from XenStore simply stop appearing in announcements,
and peers prune them: soft-state discovery with no explicit
de-registration message.

Two announcement protocols are supported (``mode``):

* ``"announce"`` (the paper's, and the default): every scan unicasts
  the *full* roster to every willing guest -- O(n) frames of O(n)
  bytes per scan.  Fine for the paper's 2-30 guest experiments;
  collapses at cluster scale.
* ``"delta"`` (the thousand-guest control plane): a *changed* scan
  multicasts ONE epoch-tagged :class:`~repro.core.protocol.RosterDelta`
  (joins/leaves only) to the link-local
  :data:`~repro.core.protocol.XENLOOP_MCAST` address; a quiescent scan
  sends nothing at all (no frame is even serialized).  Every
  ``full_sync_every`` scans a :class:`~repro.core.protocol.FullSync`
  carries the complete roster + epoch so guests that missed a delta
  resynchronise.  Dom0 also attaches a :class:`Dom0ControlPort` to the
  bridge (pinned in the FDB under :data:`DOM0_MAC`) and answers guests'
  :class:`~repro.core.protocol.WhoIs` queries with
  :class:`~repro.core.protocol.PeerInfo` -- the lookup service that
  lets a guest keep only O(active peers) mapping state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.control import LifecycleHooks
from repro.core.protocol import (
    DOM0_MAC,
    XENLOOP_MCAST,
    Announce,
    FullSync,
    PeerInfo,
    RosterDelta,
    WhoIs,
    parse_message,
)
from repro.net.addr import MacAddr
from repro.net.bridge import BridgePort
from repro.net.ethernet import ETH_P_XENLOOP
from repro.net.packet import EthHeader, Packet
from repro.xen.xenstore import XenStoreError

if TYPE_CHECKING:  # pragma: no cover
    from repro.xen.machine import XenMachine

__all__ = ["DiscoveryModule", "Dom0ControlPort", "DOM0_MAC"]


class Dom0ControlPort(BridgePort):
    """Bridge port through which Dom0 receives XenLoop control frames.

    Only attached in ``delta`` mode, and pinned in the bridge FDB under
    :data:`DOM0_MAC` so WhoIs unicasts reach exactly this port instead
    of being flooded to every guest (and out of the uplink).
    """

    def __init__(self, discovery: "DiscoveryModule"):
        super().__init__(f"port-dom0-{discovery.machine.name}")
        self.discovery = discovery

    def deliver(self, packet: Packet):
        """Hand a frame to the discovery module (generator, Dom0 ctx)."""
        yield from self.discovery.control_input(packet)


class DiscoveryModule(LifecycleHooks):
    """Dom0-resident periodic XenStore scanner and announcer.

    Implements :class:`~repro.core.control.LifecycleHooks` for the
    soft-state roster: each scan diffs the collated [guest-ID, MAC]
    list against the previous one and reports appearances and
    disappearances through ``peer_discovered`` / ``peer_lost`` -- the
    same interface the guest-side control plane uses -- keeping
    ``roster`` (the currently advertising guests) current.
    """
    def __init__(
        self,
        machine: "XenMachine",
        period: float | None = None,
        mode: str = "announce",
        full_sync_every: int = 8,
    ):
        if mode not in ("announce", "delta"):
            raise ValueError(f"unknown discovery mode {mode!r}")
        self.machine = machine
        self.period = period if period is not None else machine.costs.discovery_period
        self.mode = mode
        self.full_sync_every = full_sync_every
        self.running = True
        self.scans = 0
        self.announcements_sent = 0
        #: delta-mode counters (all stay 0 in announce mode).
        self.epoch = 0
        self.deltas_sent = 0
        self.full_syncs_sent = 0
        self.quiescent_scans = 0
        self.whois_answered = 0
        #: MAC -> guest-ID of guests seen advertising in the last scan.
        self.roster: dict[MacAddr, int] = {}
        self.control_port: Dom0ControlPort | None = None
        if mode == "delta":
            # Attach (and pin) the WhoIs answering port.  Announce mode
            # deliberately leaves the bridge untouched: the paper path
            # must stay frame-for-frame identical to the goldens.
            self.control_port = Dom0ControlPort(self)
            machine.bridge.add_port(self.control_port)
            machine.bridge.pin(DOM0_MAC, self.control_port)
        machine.dom0.spawn(self._scan_loop(), name="xl-discovery")

    # -- LifecycleHooks (roster bookkeeping) ----------------------------
    def peer_discovered(self, mac: MacAddr, domid: int) -> None:
        self.roster[mac] = domid

    def peer_lost(self, mac: MacAddr) -> None:
        self.roster.pop(mac, None)

    def stop(self) -> None:
        """Stop scanning (no further announcements are sent)."""
        self.running = False

    def snapshot_state(self) -> dict:
        """Scanner progress and the current soft-state roster."""
        return {
            "running": self.running,
            "period": self.period,
            "mode": self.mode,
            "full_sync_every": self.full_sync_every,
            "scans": self.scans,
            "announcements_sent": self.announcements_sent,
            "epoch": self.epoch,
            "deltas_sent": self.deltas_sent,
            "full_syncs_sent": self.full_syncs_sent,
            "quiescent_scans": self.quiescent_scans,
            "whois_answered": self.whois_answered,
            "roster": {str(mac): domid for mac, domid in self.roster.items()},
        }

    # -- one scan ------------------------------------------------------
    def collate(self) -> list[tuple[int, MacAddr]]:
        """Read XenStore and build the [guest-ID, MAC] list of willing guests."""
        store = self.machine.xenstore
        entries: list[tuple[int, MacAddr]] = []
        try:
            domids = store.ls(0, "/local/domain")
        except XenStoreError:
            return entries
        for domid_str in domids:
            try:
                domid = int(domid_str)
            except ValueError:
                continue
            path = f"/local/domain/{domid}/xenloop"
            if not store.exists(0, path):
                continue
            try:
                mac = MacAddr(store.read(0, path))
            except (XenStoreError, ValueError):
                continue
            entries.append((domid, mac))
        return entries

    def _scan_loop(self):
        dom0 = self.machine.dom0
        costs = dom0.costs
        while self.running:
            yield dom0.sim.timeout(self.period)
            if not self.running:
                return
            self.scans += 1
            # One XenStore directory listing plus a read per guest.
            yield dom0.exec(costs.xenstore_op)
            entries = self.collate()
            yield dom0.exec(costs.xenstore_op * max(1, len(entries)))
            joins, leaves = self._update_roster(entries)
            if self.mode == "delta":
                self._delta_scan(joins, leaves)
                continue
            if not entries:
                continue
            # One announcement, one serialization: every recipient gets
            # the identical payload bytes (hoisted out of the loop).
            msg = Announce(sender_domid=dom0.domid, entries=entries)
            announce_payload = msg.to_bytes()
            plan = getattr(dom0.sim, "fault_plan", None)
            for domid, mac in entries:
                repeats = 1
                if plan is not None and plan.has_control_rules:
                    # Fault tap: announcement loss per recipient (the rule's
                    # ``guest`` matches the recipient).  Announcements are
                    # periodic and idempotent, so a delay rule here is
                    # equivalent to a drop of this scan's frame.
                    target = self.machine.hypervisor.domains.get(domid)
                    deliver, delay, dup = plan.on_control(
                        target.name if target is not None else f"dom{domid}",
                        "Announce",
                    )
                    if not deliver or delay > 0.0:
                        continue
                    repeats += dup
                for _ in range(repeats):
                    frame = Packet(
                        payload=announce_payload,
                        eth=EthHeader(dst=mac, src=DOM0_MAC, ethertype=ETH_P_XENLOOP),
                    )
                    self.announcements_sent += 1
                    # Inject into the bridge; it forwards to the guest's vif.
                    self.machine.bridge.input(None, frame)

    def _update_roster(
        self, entries: list[tuple[int, MacAddr]]
    ) -> tuple[list[tuple[int, MacAddr]], list[tuple[int, MacAddr]]]:
        """Diff one scan against the roster; returns (joins, leaves).

        A guest that re-advertised under a new guest-ID while keeping
        its MAC (crash/restart) is reported as a *join* carrying the new
        ID -- receivers detect the identity change by the reused key.
        """
        fresh = {mac: domid for domid, mac in entries}
        joins: list[tuple[int, MacAddr]] = []
        leaves: list[tuple[int, MacAddr]] = []
        for mac in fresh.keys() - self.roster.keys():
            self.peer_discovered(mac, fresh[mac])
            joins.append((fresh[mac], mac))
        for mac in self.roster.keys() - fresh.keys():
            leaves.append((self.roster[mac], mac))
            self.peer_lost(mac)
        for mac, domid in fresh.items():
            old = self.roster.get(mac)
            if old is not None and old != domid:
                joins.append((domid, mac))
        # Refresh identities that changed in place (re-created guest).
        self.roster.update(fresh)
        return joins, leaves

    # -- delta mode ----------------------------------------------------
    def _delta_scan(self, joins, leaves) -> None:
        """Delta-mode tail of one scan: multicast the changes (if any)
        plus the periodic full sync."""
        dom0 = self.machine.dom0
        if joins or leaves:
            # Sorted so the frame bytes -- and every receiver's apply
            # order -- are independent of set-iteration order.
            joins.sort()
            leaves.sort()
            self.epoch += 1
            self._multicast(RosterDelta(dom0.domid, self.epoch, joins, leaves))
            self.deltas_sent += 1
        else:
            # Quiescent-scan fast path: nothing changed, so no frame is
            # constructed, serialized, or sent this period.
            self.quiescent_scans += 1
        if self.full_sync_every and self.scans % self.full_sync_every == 0:
            roster = sorted((domid, mac) for mac, domid in self.roster.items())
            self._multicast(FullSync(dom0.domid, self.epoch, roster))
            self.full_syncs_sent += 1

    def _multicast(self, msg) -> None:
        """Inject one link-local multicast control frame into the bridge
        (floods to every local guest; never leaves the machine)."""
        frame = Packet(
            payload=msg.to_bytes(),
            eth=EthHeader(dst=XENLOOP_MCAST, src=DOM0_MAC, ethertype=ETH_P_XENLOOP),
        )
        self.announcements_sent += 1
        self.machine.bridge.input(None, frame)

    # -- WhoIs service (delta mode, Dom0 control port) ------------------
    def control_input(self, packet: Packet):
        """Frame delivered to the Dom0 control port (generator, Dom0
        context): answer WhoIs queries from the roster, ignore the rest
        (our own flooded multicasts also land here)."""
        eth = packet.eth
        if eth is None or eth.ethertype != ETH_P_XENLOOP:
            return
        try:
            msg = parse_message(packet.payload)
        except ValueError:
            return
        if not isinstance(msg, WhoIs) or not self.running:
            return
        dom0 = self.machine.dom0
        yield dom0.exec(dom0.costs.xenloop_lookup)
        domid = self.roster.get(msg.mac)
        found = domid is not None
        reply = PeerInfo(dom0.domid, msg.mac, domid if found else 0, found)
        self.whois_answered += 1
        repeats = 1
        plan = getattr(dom0.sim, "fault_plan", None)
        if plan is not None and plan.has_control_rules:
            # Fault tap: PeerInfo loss/delay/dup, keyed by the asking
            # guest (the rule's ``guest`` matches the recipient).
            requester = self.machine.hypervisor.domains.get(msg.sender_domid)
            deliver, delay, dup = plan.on_control(
                requester.name if requester is not None else f"dom{msg.sender_domid}",
                "PeerInfo",
            )
            if not deliver:
                return
            if delay > 0.0:
                yield dom0.sim.timeout(delay)
            repeats += dup
        payload = reply.to_bytes()
        for _ in range(repeats):
            frame = Packet(
                payload=payload,
                eth=EthHeader(dst=eth.src, src=DOM0_MAC, ethertype=ETH_P_XENLOOP),
            )
            self.machine.bridge.input(None, frame)
