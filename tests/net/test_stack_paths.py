"""End-to-end stack paths: ARP, ICMP, loopback, switch delivery, netfilter."""

import pytest

from repro.calibration import DEFAULT_COSTS
from repro.net.ethernet import ETH_P_XENLOOP
from repro.net.netfilter import HookPoint, Verdict
from repro.net.packet import Packet
from tests.conftest import run_gen


def ping(sim, node, dst_ip, size=56, seq=0):
    """Helper: one echo request; returns RTT seconds or None on timeout."""

    def gen():
        ident = node.stack.icmp.alloc_ident()
        t0 = sim.now
        waiter = yield from node.stack.icmp.send_echo(dst_ip, ident, seq, size)
        yield sim.any_of([waiter, sim.timeout(1.0)])
        return (sim.now - t0) if waiter.triggered else None

    return run_gen(sim, gen())


class TestLoopback:
    def test_ping_self(self, sim, host):
        rtt = ping(sim, host, host.stack.ip)
        assert rtt is not None
        assert 0 < rtt < 50e-6

    def test_loopback_counters(self, sim, host):
        ping(sim, host, host.stack.ip)
        assert host.stack.loopback.tx_packets >= 2  # echo + reply


class TestArp:
    def test_resolution_populates_cache(self, sim, lan):
        a, b, _switch = lan
        assert a.stack.arp.lookup(b.stack.ip) is None
        rtt = ping(sim, a, b.stack.ip)
        assert rtt is not None
        assert a.stack.arp.lookup(b.stack.ip) == b.stack.primary_device().mac

    def test_replies_learn_requester(self, sim, lan):
        a, b, _switch = lan
        ping(sim, a, b.stack.ip)
        # b learned a's mapping from the ARP request itself
        assert b.stack.arp.lookup(a.stack.ip) == a.stack.primary_device().mac

    def test_unresolvable_address_fails(self, sim, lan):
        a, _b, _switch = lan
        from repro.net.addr import IPv4Addr

        rtt = ping(sim, a, IPv4Addr("10.0.0.99"))
        assert rtt is None
        assert a.stack.arp.failures >= 1

    def test_gratuitous_arp_updates_peers(self, sim, lan):
        a, b, _switch = lan
        ping(sim, a, b.stack.ip)
        b.stack.arp.announce()
        sim.run(until=sim.now + 0.01)
        assert a.stack.arp.lookup(b.stack.ip) == b.stack.primary_device().mac


class TestInterMachine:
    def test_ping_rtt_includes_wire_and_nic_latency(self, sim, lan):
        a, b, _switch = lan
        ping(sim, a, b.stack.ip)  # warm ARP
        rtt = ping(sim, a, b.stack.ip, seq=1)
        # at minimum two NIC interrupt latencies + wire each way
        assert rtt > 2 * DEFAULT_COSTS.nic_rx_latency

    def test_switch_learns_and_forwards(self, sim, lan):
        a, b, switch = lan
        ping(sim, a, b.stack.ip)
        assert switch.frames_forwarded > 0
        assert len(switch._fdb) == 2

    def test_large_ping_fragments_and_reassembles(self, sim, lan):
        a, b, _switch = lan
        rtt = ping(sim, a, b.stack.ip, size=5000)
        assert rtt is not None
        assert b.stack.ipv4.reassembler.completed >= 1

    def test_frames_for_other_macs_dropped(self, sim, lan):
        a, b, _switch = lan
        ping(sim, a, b.stack.ip)
        # the initial ARP broadcast was flooded and accepted; now spoof a
        # frame to a bogus unicast MAC via flooding
        from repro.net.addr import MacAddr
        from repro.net.ethernet import ETH_P_IP
        from repro.net.packet import EthHeader

        bogus = Packet(
            payload=b"?",
            eth=EthHeader(MacAddr(0xDEAD), a.stack.primary_device().mac, ETH_P_IP),
        )
        nic_b = b.stack.primary_device()
        dropped_before = nic_b.dropped

        def gen():
            dev = a.stack.primary_device()
            yield a.exec(dev.tx_cost(bogus))
            yield dev.queue_xmit(bogus)

        run_gen(sim, gen())
        sim.run(until=sim.now + 0.01)
        # the NIC's hardware MAC filter rejects the flooded frame
        assert nic_b.dropped == dropped_before + 1


class TestNetfilter:
    def test_post_routing_steal(self, sim, host):
        stolen = []

        def hook(packet, dev):
            stolen.append(packet)
            return Verdict.STOLEN
            yield  # pragma: no cover

        host.stack.netfilter.register(HookPoint.POST_ROUTING, hook)
        rtt = ping(sim, host, host.stack.ip)
        assert rtt is None  # every packet stolen, no replies
        assert stolen

    def test_post_routing_drop(self, sim, host):
        def hook(packet, dev):
            return Verdict.DROP
            yield  # pragma: no cover

        host.stack.netfilter.register(HookPoint.POST_ROUTING, hook)
        assert ping(sim, host, host.stack.ip) is None
        assert host.stack.ipv4.dropped > 0

    def test_hook_priority_order(self, sim, host):
        calls = []

        def low(packet, dev):
            calls.append("low")
            return Verdict.ACCEPT
            yield  # pragma: no cover

        def high(packet, dev):
            calls.append("high")
            return Verdict.ACCEPT
            yield  # pragma: no cover

        host.stack.netfilter.register(HookPoint.POST_ROUTING, low, priority=10)
        host.stack.netfilter.register(HookPoint.POST_ROUTING, high, priority=-10)
        ping(sim, host, host.stack.ip)
        assert calls[0] == "high"

    def test_unregister(self, sim, host):
        def hook(packet, dev):
            return Verdict.DROP
            yield  # pragma: no cover

        host.stack.netfilter.register(HookPoint.POST_ROUTING, hook)
        host.stack.netfilter.unregister(HookPoint.POST_ROUTING, hook)
        assert ping(sim, host, host.stack.ip) is not None

    def test_unregister_unknown_raises(self, host):
        with pytest.raises(KeyError):
            host.stack.netfilter.unregister(HookPoint.POST_ROUTING, lambda: None)

    def test_generator_hook_charges_cpu(self, sim, host):
        def hook(packet, dev):
            yield host.exec(1e-3)  # visible charge
            return Verdict.ACCEPT

        host.stack.netfilter.register(HookPoint.POST_ROUTING, hook)
        rtt = ping(sim, host, host.stack.ip)
        assert rtt > 1e-3


class TestEthertypeHandlers:
    def test_custom_handler_receives_frames(self, sim, lan):
        a, b, _switch = lan
        got = []

        def handler(packet, dev):
            got.append(packet.payload)
            return
            yield  # pragma: no cover

        b.stack.register_ethertype(ETH_P_XENLOOP, handler)
        ping(sim, a, b.stack.ip)  # warm ARP

        def send():
            dev = a.stack.primary_device()
            mac = a.stack.arp.lookup(b.stack.ip)
            yield from a.stack.link_output(dev, mac, ETH_P_XENLOOP, b"hello-xl")

        run_gen(sim, send())
        sim.run(until=sim.now + 0.01)
        assert got == [b"hello-xl"]

    def test_duplicate_registration_rejected(self, host):
        host.stack.register_ethertype(0x9999, lambda p, d: None)
        with pytest.raises(ValueError):
            host.stack.register_ethertype(0x9999, lambda p, d: None)

    def test_unknown_ethertype_dropped(self, sim, lan):
        a, b, _switch = lan
        ping(sim, a, b.stack.ip)
        dropped = b.stack.rx_dropped

        def send():
            dev = a.stack.primary_device()
            mac = a.stack.arp.lookup(b.stack.ip)
            yield from a.stack.link_output(dev, mac, 0x1234, b"???")

        run_gen(sim, send())
        sim.run(until=sim.now + 0.01)
        assert b.stack.rx_dropped == dropped + 1
