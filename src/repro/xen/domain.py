"""Xen domains (Dom0 and guests).

A :class:`Domain` is a :class:`~repro.net.node.Node` (it owns processes
and charges CPU to its machine's cores under its own scheduling key)
plus Xen identity and lifecycle: a domid, XenStore access with
permission checks and per-operation cost, and the
pre-migrate/post-migrate/shutdown callback lists that the XenLoop
module registers with (Sect. 3.4: the module "receives a callback from
the Xen Hypervisor" before migration).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.net.addr import IPv4Addr, MacAddr
from repro.net.node import Node

if TYPE_CHECKING:  # pragma: no cover
    from repro.xen.machine import XenMachine

__all__ = ["Domain"]

RUNNING = "RUNNING"
SUSPENDED = "SUSPENDED"
DEAD = "DEAD"


class Domain(Node):
    """A Xen domain: a Node plus domid, XenStore access, lifecycle hooks."""
    def __init__(self, machine: "XenMachine", domid: int, name: str, is_dom0: bool = False):
        super().__init__(
            machine.sim,
            machine.cpus,
            machine.costs,
            name,
            sched_key=name,  # stable across migration; unique per scenario
        )
        self.machine = machine
        self.domid = domid
        self.is_dom0 = is_dom0
        #: Dom0 gets a vCPU per physical core (Xen default); guests are
        #: created with one vCPU unless create_guest says otherwise.
        self.vcpus = len(machine.cpus.cores) if is_dom0 else 1
        self.state = RUNNING
        #: the guest vif's MAC (set when networking is wired up).
        self.mac: Optional[MacAddr] = None
        self.ip: Optional[IPv4Addr] = None
        #: guest-side split driver, set by repro.xennet wiring.
        self.netfront = None

        # Lifecycle callbacks.  Pre-migrate/shutdown callbacks are
        # *generator functions* (they may need simulated time to drain
        # channels); post-migrate callbacks likewise.
        self.pre_migrate_callbacks: list[Callable] = []
        self.post_migrate_callbacks: list[Callable] = []
        self.shutdown_callbacks: list[Callable] = []

    # -- XenStore access (charged, permission-checked) ---------------------
    @property
    def xs_prefix(self) -> str:
        """This domain's XenStore subtree root."""
        return f"/local/domain/{self.domid}"

    def xs_write(self, path: str, value: str):
        """Permission-checked XenStore write (generator; charges CPU)."""
        yield self.exec(self.costs.xenstore_op)
        self.machine.xenstore.write(self.domid, path, value)

    def xs_read(self, path: str):
        """Permission-checked XenStore read (generator; charges CPU)."""
        yield self.exec(self.costs.xenstore_op)
        return self.machine.xenstore.read(self.domid, path)

    def xs_rm(self, path: str):
        """Permission-checked XenStore subtree removal (generator)."""
        yield self.exec(self.costs.xenstore_op)
        self.machine.xenstore.rm(self.domid, path)

    def xs_ls(self, path: str):
        """Permission-checked XenStore directory listing (generator)."""
        yield self.exec(self.costs.xenstore_op)
        return self.machine.xenstore.ls(self.domid, path)

    # -- grant table convenience ------------------------------------------
    @property
    def grant_table(self):
        """This domain's grant table on its current machine."""
        return self.machine.hypervisor.grant_tables[self.domid]

    # -- lifecycle -----------------------------------------------------------
    def shutdown(self):
        """Cleanly shut the domain down (generator).

        Runs the registered shutdown callbacks (XenLoop uses these to
        tear channels down, Sect. 3.3 "channel teardown"), then removes
        the domain from the machine.
        """
        if self.state == DEAD:
            return
        for cb in list(self.shutdown_callbacks):
            yield from cb()
        self.state = DEAD
        self.alive = False
        self.machine.remove_domain(self)

    def crash(self) -> None:
        """Abrupt domain death (fault injection, `xl destroy`).

        Unlike :meth:`shutdown`, NO registered callbacks run -- the
        XenLoop module gets no chance to tear channels down, so peers
        must recover through the soft-state announcement diff and the
        hypervisor's force-revoke path.  Synchronous: the machine
        reclaims the domain immediately (grant table dropped, all event
        channel ports closed, vif unplugged, XenStore subtree removed).
        """
        if self.state == DEAD:
            return
        self.state = DEAD
        self.alive = False
        self.machine.remove_domain(self)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Domain {self.name} id={self.domid} {self.state}>"
