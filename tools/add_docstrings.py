"""One-shot maintenance script: insert docstrings on public items.

Used once to bring every public class/function up to the documentation
standard; kept in the repo because the DOCS table doubles as an API
summary and the script is reusable after refactors (it is idempotent:
items that already have a docstring are skipped).
"""

from __future__ import annotations

import ast
import pathlib

DOCS: dict[tuple[str, str], str] = {
    # cli.py
    ("src/repro/cli.py", "cmd_list"): "List scenarios and available commands.",
    ("src/repro/cli.py", "cmd_ping"): "Flood-ping one scenario or all four.",
    ("src/repro/cli.py", "cmd_tables"): "Measure every Tables 1-3 metric across the four scenarios.",
    ("src/repro/cli.py", "cmd_fig11"): "Print the Fig. 11 migration timeline as ASCII.",
    ("src/repro/cli.py", "cmd_trace"): "Print a traced ping's hop-by-hop timeline per scenario.",
    ("src/repro/cli.py", "cmd_bypass"): "Compare the shipped design against the future-work socket bypass.",
    ("src/repro/cli.py", "main"): "Parse arguments and dispatch to a subcommand; returns the exit code.",
    # core/channel.py
    ("src/repro/core/channel.py", "ChannelState"): "Lifecycle states of one channel endpoint.",
    ("src/repro/core/channel.py", "Channel.fits"): "Whether a payload of ``nbytes`` can ever fit the outgoing FIFO.",
    # core/discovery.py
    ("src/repro/core/discovery.py", "DiscoveryModule"): "Dom0-resident periodic XenStore scanner and announcer.",
    ("src/repro/core/discovery.py", "DiscoveryModule.stop"): "Stop scanning (no further announcements are sent).",
    # core/fifo.py
    ("src/repro/core/fifo.py", "FifoLayoutError"): "The shared region cannot hold (or does not contain) a valid FIFO.",
    ("src/repro/core/fifo.py", "Fifo.front"): "Consumer index (free-running 32-bit counter in the descriptor page).",
    ("src/repro/core/fifo.py", "Fifo.back"): "Producer index (free-running 32-bit counter in the descriptor page).",
    ("src/repro/core/fifo.py", "Fifo.used_slots"): "Occupied slots: ``(back - front) mod 2^32`` -- valid because m > k.",
    ("src/repro/core/fifo.py", "Fifo.free_slots"): "Slots available to the producer right now.",
    ("src/repro/core/fifo.py", "Fifo.is_empty"): "True when the consumer has caught up with the producer.",
    ("src/repro/core/fifo.py", "Fifo.active"): "The shared ACTIVE flag (cleared by channel teardown).",
    ("src/repro/core/fifo.py", "Fifo.producer_waiting"): "Shared flag: the producer queued packets awaiting space.",
    ("src/repro/core/fifo.py", "Fifo.set_producer_waiting"): "Ask the consumer for a space-available notification.",
    ("src/repro/core/fifo.py", "Fifo.clear_producer_waiting"): "Acknowledge the space request (consumer side).",
    ("src/repro/core/fifo.py", "Fifo.slots_needed"): "Slots one entry occupies: 1 metadata slot + ceil(len/8) payload slots.",
    ("src/repro/core/fifo.py", "Fifo.load_grefs"): "Read the data-page grant references back from the descriptor page.",
    # core/module.py
    ("src/repro/core/module.py", "XenLoopModule"): "The self-contained guest 'kernel module' of the paper.",
    ("src/repro/core/module.py", "XenLoopModule.channel_closed"): "Channel callback: drop a closed channel from the table.",
    ("src/repro/core/module.py", "XenLoopModule.stats"): "Snapshot of per-module packet and channel counters.",
    # core/protocol.py
    ("src/repro/core/protocol.py", "Announce.to_bytes"): "Serialize to the XenLoop-type wire format.",
    ("src/repro/core/protocol.py", "ConnectRequest"): "Larger-ID guest asking the smaller-ID peer to act as listener.",
    ("src/repro/core/protocol.py", "ConnectRequest.to_bytes"): "Serialize to the XenLoop-type wire format.",
    ("src/repro/core/protocol.py", "CreateChannel.to_bytes"): "Serialize to the XenLoop-type wire format.",
    ("src/repro/core/protocol.py", "ChannelAck"): "Connector's confirmation that the channel is mapped and bound.",
    ("src/repro/core/protocol.py", "ChannelAck.to_bytes"): "Serialize to the XenLoop-type wire format.",
    # core/socket_bypass.py
    ("src/repro/core/socket_bypass.py", "BypassError"): "A bypass stream operation failed (e.g. the channel died).",
    ("src/repro/core/socket_bypass.py", "BypassConnection.recv_exactly"): "Receive exactly ``n`` bytes (generator); raises on early EOF.",
    ("src/repro/core/socket_bypass.py", "BypassConnection.close"): "Half-close: send FIN; fully closed once both sides have.",
    ("src/repro/core/socket_bypass.py", "BypassConnection.on_data"): "Frame arrival (drain-worker context): buffer and wake readers.",
    ("src/repro/core/socket_bypass.py", "BypassConnection.on_fin"): "Peer FIN arrival: mark EOF and finish the close handshake.",
    ("src/repro/core/socket_bypass.py", "SocketBypassModule.forget_stream"): "Remove a finished stream from the demux table.",
    ("src/repro/core/socket_bypass.py", "SocketBypassModule.stats"): "Module stats extended with bypass connect/fallback counters.",
    # mpi/comm.py
    ("src/repro/mpi/comm.py", "MpiError"): "Malformed message framing on the MPI connection.",
    ("src/repro/mpi/comm.py", "MpiConnection.close"): "Close the underlying TCP connection (generator).",
    # net/addr.py
    ("src/repro/net/addr.py", "MacAddr.is_broadcast"): "True for ff:ff:ff:ff:ff:ff.",
    ("src/repro/net/addr.py", "MacAddr.is_multicast"): "True when the I/G bit of the first octet is set.",
    ("src/repro/net/addr.py", "MacAddr.to_bytes"): "6-byte big-endian wire representation.",
    ("src/repro/net/addr.py", "MacAddr.from_bytes"): "Parse 6 wire bytes into a MacAddr.",
    ("src/repro/net/addr.py", "IPv4Addr.in_subnet"): "Whether this address falls inside ``network/prefix_len``.",
    ("src/repro/net/addr.py", "IPv4Addr.to_bytes"): "4-byte big-endian wire representation.",
    ("src/repro/net/addr.py", "IPv4Addr.from_bytes"): "Parse 4 wire bytes into an IPv4Addr.",
    # net/arp.py
    ("src/repro/net/arp.py", "NeighborCache.insert"): "Install a mapping and wake any resolvers blocked on it.",
    ("src/repro/net/arp.py", "NeighborCache.flush"): "Drop every cached mapping.",
    # net/bridge.py
    ("src/repro/net/bridge.py", "NicBridgePort.deliver"): "Send the frame out of the machine via the physical NIC (generator).",
    ("src/repro/net/bridge.py", "Bridge.add_port"): "Attach a port (vif netback or NIC uplink) to the bridge.",
    ("src/repro/net/bridge.py", "Bridge.remove_port"): "Detach a port and purge its learned MACs.",
    ("src/repro/net/bridge.py", "Bridge.forget"): "Purge one learned MAC (e.g. after a guest migrates away).",
    # net/capture.py
    ("src/repro/net/capture.py", "CapturedFrame"): "One recorded frame: timestamp, direction, and the packet itself.",
    ("src/repro/net/capture.py", "CapturedFrame.describe"): "Render the frame as a one-line tcpdump-style summary.",
    ("src/repro/net/capture.py", "PacketCapture.attach"): "Start capturing on ``dev`` (wraps its tx/rx entry points).",
    ("src/repro/net/capture.py", "PacketCapture.detach"): "Stop capturing and restore the device's original methods.",
    ("src/repro/net/capture.py", "PacketCapture.filter"): "Recorded frames filtered by direction and/or IP protocol.",
    ("src/repro/net/capture.py", "PacketCapture.dump"): "All recorded frames as tcpdump-style text.",
    ("src/repro/net/capture.py", "PacketCapture.clear"): "Discard everything recorded so far.",
    # net/devices.py
    ("src/repro/net/devices.py", "NetDevice.tx_cost"): "CPU charged to the sender per transmitted packet.",
    ("src/repro/net/devices.py", "NetDevice.rx_cost"): "CPU charged to the receiver's softirq per received packet.",
    ("src/repro/net/devices.py", "NetDevice.queue_xmit"): "Hand a frame to the medium; the event fires on acceptance.",
    ("src/repro/net/devices.py", "NetDevice.attach"): "Bind the device to its owning stack.",
    ("src/repro/net/devices.py", "NetDevice.count_tx"): "Update transmit counters for one outgoing frame.",
    ("src/repro/net/devices.py", "LoopbackDevice.tx_cost"): "Loopback transmit cost (softirq reinjection).",
    ("src/repro/net/devices.py", "LoopbackDevice.rx_cost"): "Loopback receive cost (softirq reinjection).",
    ("src/repro/net/devices.py", "LoopbackDevice.queue_xmit"): "Reinject the frame straight into the owning stack's backlog.",
    # net/icmp.py
    ("src/repro/net/icmp.py", "IcmpLayer"): "ICMP echo handling: in-'kernel' responder plus waiter registry.",
    ("src/repro/net/icmp.py", "IcmpLayer.alloc_ident"): "Allocate the next echo identifier (16-bit, wraps, skips 0).",
    ("src/repro/net/icmp.py", "IcmpLayer.input"): "Process one received ICMP message (generator, softirq context).",
    # net/ipv4.py
    ("src/repro/net/ipv4.py", "Reassembler.pending"): "Number of incomplete reassembly buffers.",
    ("src/repro/net/ipv4.py", "Ipv4Layer.register_protocol"): "Register an L4 input handler for an IP protocol number.",
    # net/netfilter.py
    ("src/repro/net/netfilter.py", "HookPoint"): "Where in the stack a hook chain runs.",
    ("src/repro/net/netfilter.py", "Verdict"): "A hook's decision about the packet.",
    ("src/repro/net/netfilter.py", "NetfilterRegistry.register"): "Add a generator hook at ``point`` (lower priority runs first).",
    ("src/repro/net/netfilter.py", "NetfilterRegistry.unregister"): "Remove a previously registered hook (matched by equality).",
    ("src/repro/net/netfilter.py", "NetfilterRegistry.count"): "Number of hooks registered at ``point``.",
    # net/nic.py
    ("src/repro/net/nic.py", "PhysNIC.connect"): "Cable the NIC into a switch port.",
    ("src/repro/net/nic.py", "PhysNIC.tx_cost"): "Driver transmit cost: descriptor work plus DMA time.",
    ("src/repro/net/nic.py", "PhysNIC.rx_cost"): "Driver receive cost: descriptor work plus DMA time.",
    ("src/repro/net/nic.py", "PhysNIC.queue_xmit"): "Queue the frame on the transmit ring (bounded; backpressure).",
    ("src/repro/net/nic.py", "EthernetSwitch.attach"): "Create a switch port for ``nic``.",
    ("src/repro/net/nic.py", "EthernetSwitch.ingress"): "A frame arrives from a NIC: learn the source, forward or flood.",
    # net/packet.py
    ("src/repro/net/packet.py", "EthHeader"): "Ethernet II header (14 bytes on the wire).",
    ("src/repro/net/packet.py", "EthHeader.to_bytes"): "Serialize to the 14-byte wire format.",
    ("src/repro/net/packet.py", "EthHeader.from_bytes"): "Parse the 14-byte wire format.",
    ("src/repro/net/packet.py", "ArpHeader.to_bytes"): "Serialize to the 28-byte wire format.",
    ("src/repro/net/packet.py", "ArpHeader.from_bytes"): "Parse the 28-byte wire format.",
    ("src/repro/net/packet.py", "IPv4Header"): "IPv4 header (20 bytes; version/TOS/checksum carried as padding).",
    ("src/repro/net/packet.py", "IPv4Header.to_bytes"): "Serialize to the 20-byte wire format (offset in 8-byte units).",
    ("src/repro/net/packet.py", "IPv4Header.from_bytes"): "Parse the 20-byte wire format.",
    ("src/repro/net/packet.py", "UdpHeader"): "UDP header (8 bytes; checksum carried as padding).",
    ("src/repro/net/packet.py", "UdpHeader.to_bytes"): "Serialize to the 8-byte wire format.",
    ("src/repro/net/packet.py", "UdpHeader.from_bytes"): "Parse the 8-byte wire format.",
    ("src/repro/net/packet.py", "TcpHeader"): "TCP header (20 bytes, no options; window is scaled, see tcp.py).",
    ("src/repro/net/packet.py", "TcpHeader.to_bytes"): "Serialize to the 20-byte wire format (seq/ack mod 2^32).",
    ("src/repro/net/packet.py", "TcpHeader.from_bytes"): "Parse the 20-byte wire format.",
    ("src/repro/net/packet.py", "IcmpHeader"): "ICMP echo header (8 bytes).",
    ("src/repro/net/packet.py", "IcmpHeader.to_bytes"): "Serialize to the 8-byte wire format.",
    ("src/repro/net/packet.py", "IcmpHeader.from_bytes"): "Parse the 8-byte wire format.",
    ("src/repro/net/packet.py", "Packet.is_fragment"): "True for IP fragments (offset > 0 or more-fragments set).",
    # net/sockets.py
    ("src/repro/net/sockets.py", "SocketError"): "Misuse of the socket facade (wrong type, closed, unbound...).",
    ("src/repro/net/sockets.py", "Socket.bind"): "Bind to (ip, port); port 0 picks an ephemeral port for datagrams.",
    ("src/repro/net/sockets.py", "Socket.listen"): "Start accepting connections on the bound port (stream only).",
    ("src/repro/net/sockets.py", "Socket.sendall"): "Blocking stream send of the whole buffer (generator).",
    ("src/repro/net/sockets.py", "Socket.recv"): "Blocking stream receive of up to ``max_bytes`` (generator).",
    ("src/repro/net/sockets.py", "Socket.recv_exactly"): "Blocking stream receive of exactly ``n`` bytes (generator).",
    ("src/repro/net/sockets.py", "Socket.sendto"): "Send one datagram (generator); binds ephemerally on first use.",
    ("src/repro/net/sockets.py", "Socket.recvfrom"): "Receive one datagram (generator); returns (data, (ip, port)).",
    ("src/repro/net/sockets.py", "Socket.getsockname"): "The local (ip, port) pair, port 0 if unbound.",
    ("src/repro/net/sockets.py", "Socket.connected"): "True while an underlying stream connection is ESTABLISHED.",
    # net/stack.py
    ("src/repro/net/stack.py", "NetworkStack"): "Per-node protocol stack: devices, hooks, ARP, IP, ICMP, UDP, TCP.",
    ("src/repro/net/stack.py", "NetworkStack.add_device"): "Attach a device; the first (or primary=True) becomes the route target.",
    ("src/repro/net/stack.py", "NetworkStack.primary_device"): "The device non-loopback routes resolve to.",
    ("src/repro/net/stack.py", "NetworkStack.backlog_depth"): "Frames queued for the softirq right now.",
    ("src/repro/net/stack.py", "NetworkStack.register_ethertype"): "dev_add_pack analogue: claim a non-IP ethertype.",
    ("src/repro/net/stack.py", "NetworkStack.unregister_ethertype"): "Release a claimed ethertype.",
    ("src/repro/net/stack.py", "NetworkStack.udp_socket"): "Create a UDP socket (port 0 = ephemeral).",
    ("src/repro/net/stack.py", "NetworkStack.tcp_listen"): "Create a TCP listener on ``port``.",
    # net/tcp.py
    ("src/repro/net/tcp.py", "TcpConnection.on_segment"): "Process one arriving segment (generator, softirq context).",
    ("src/repro/net/tcp.py", "TcpListener.close"): "Stop listening (queued-but-unaccepted connections are kept).",
    ("src/repro/net/tcp.py", "TcpLayer"): "Per-stack TCP: listeners, connection demux, ephemeral ports.",
    ("src/repro/net/tcp.py", "TcpLayer.listen"): "Open a passive socket; accepted connections inherit the buffers.",
    # net/udp.py
    ("src/repro/net/udp.py", "UdpSocket.close"): "Unbind the port; pending receivers never complete.",
    ("src/repro/net/udp.py", "UdpLayer"): "Per-stack UDP: port table, demux, ephemeral allocation.",
    ("src/repro/net/udp.py", "UdpLayer.unbind"): "Release a bound port.",
    # scenarios.py
    ("src/repro/scenarios.py", "Scenario"): "A built evaluation topology plus its measurement endpoints.",
    ("src/repro/scenarios.py", "Scenario.xenloop_module"): "The XenLoop module loaded in ``node``, if any.",
    ("src/repro/scenarios.py", "build"): "Build a scenario by name (see SCENARIO_BUILDERS).",
    # sim/engine.py
    ("src/repro/sim/engine.py", "Event.triggered"): "True once the event has been scheduled to fire.",
    ("src/repro/sim/engine.py", "Event.processed"): "True once callbacks have run.",
    ("src/repro/sim/engine.py", "Event.value"): "The event's value (or stored exception); raises while pending.",
    ("src/repro/sim/engine.py", "Process.is_alive"): "True while the generator has not finished.",
    ("src/repro/sim/engine.py", "Simulator.event"): "Create a pending event.",
    ("src/repro/sim/engine.py", "Simulator.timeout"): "Create an event firing ``delay`` seconds from now.",
    ("src/repro/sim/engine.py", "Simulator.process"): "Run a generator as a concurrent process.",
    ("src/repro/sim/engine.py", "Simulator.any_of"): "Composite event firing when any constituent fires.",
    ("src/repro/sim/engine.py", "Simulator.all_of"): "Composite event firing when every constituent has fired.",
    # sim/resources.py
    ("src/repro/sim/resources.py", "Resource.acquire"): "Request a unit; the returned event fires when granted.",
    ("src/repro/sim/resources.py", "Resource.release"): "Return a unit, admitting the oldest waiter if any.",
    ("src/repro/sim/resources.py", "Resource.queued"): "Number of acquirers currently waiting.",
    ("src/repro/sim/resources.py", "Store.put"): "Append an item; blocks (event pending) while a bounded store is full.",
    ("src/repro/sim/resources.py", "Store.get"): "Take the oldest item; the event fires when one is available.",
    ("src/repro/sim/resources.py", "CPUCores.set_vcpu_limit"): "Cap a domain's concurrent segments (its vCPU count).",
    ("src/repro/sim/resources.py", "CPUCores.queued"): "Work segments waiting for a core or a vCPU slot.",
    # sim/stats.py
    ("src/repro/sim/stats.py", "Counter.add"): "Increment by ``n`` (must be non-negative).",
    ("src/repro/sim/stats.py", "TimeSeries.record"): "Append one (time, value) sample; times must not go backwards.",
    ("src/repro/sim/stats.py", "LatencyProbe.record"): "Record one latency sample in seconds.",
    ("src/repro/sim/stats.py", "LatencyProbe.count"): "Number of samples recorded.",
    ("src/repro/sim/stats.py", "LatencyProbe.mean"): "Mean latency in seconds.",
    ("src/repro/sim/stats.py", "LatencyProbe.mean_us"): "Mean latency in microseconds.",
    ("src/repro/sim/stats.py", "LatencyProbe.percentile"): "Linear-interpolated percentile, ``p`` in [0, 100].",
    ("src/repro/sim/stats.py", "ThroughputProbe.open"): "Start the measurement interval at time ``t``.",
    ("src/repro/sim/stats.py", "ThroughputProbe.record"): "Accumulate ``n`` units observed at time ``t``.",
    ("src/repro/sim/stats.py", "ThroughputProbe.elapsed"): "Observed interval length in seconds.",
    # workloads
    ("src/repro/workloads/lmbench.py", "BwResult"): "bw_tcp outcome: bytes moved and Mbit/s.",
    ("src/repro/workloads/lmbench.py", "LatResult"): "lat_tcp outcome: round trips and mean RTT in microseconds.",
    ("src/repro/workloads/lmbench.py", "bw_tcp"): "Move ``total_bytes`` over TCP in 64 KB writes; returns Mbit/s.",
    ("src/repro/workloads/lmbench.py", "lat_tcp"): "1-byte TCP ping-pong; returns mean RTT in microseconds.",
    ("src/repro/workloads/migration_rr.py", "MigrationRrResult"): "Fig. 11 outcome: rate time series plus migration marks.",
    ("src/repro/workloads/migration_rr.py", "MigrationRrResult.rates"): "The (time, transactions/sec) samples as a list.",
    ("src/repro/workloads/netperf.py", "RrResult"): "Request-response outcome: rate and latency stats.",
    ("src/repro/workloads/netperf.py", "StreamResult"): "Stream outcome: receiver-side bytes, Mbit/s, and drops.",
    ("src/repro/workloads/netperf.py", "tcp_rr"): "netperf TCP_RR: one outstanding transaction at a time.",
    ("src/repro/workloads/netperf.py", "udp_rr"): "netperf UDP_RR: one outstanding datagram transaction at a time.",
    ("src/repro/workloads/netperf.py", "tcp_stream"): "netperf TCP_STREAM: blast a byte stream; receiver-side Mbit/s.",
    ("src/repro/workloads/netperf.py", "udp_stream"): "netperf UDP_STREAM: blast datagrams; receiver-side Mbit/s + drops.",
    ("src/repro/workloads/netpipe.py", "NetpipePoint"): "One sweep point: size, one-way latency, throughput.",
    ("src/repro/workloads/netpipe.py", "NetpipeResult"): "Full NetPIPE sweep (points in size order).",
    ("src/repro/workloads/netpipe.py", "NetpipeResult.series"): "The sweep as (sizes, Mbit/s list, latency-us list).",
    ("src/repro/workloads/netpipe.py", "run"): "Run the NetPIPE ping-pong sweep over the mini-MPI library.",
    ("src/repro/workloads/osu.py", "OsuPoint"): "One sweep point: message size and metric value.",
    ("src/repro/workloads/osu.py", "OsuResult"): "Full OSU sweep with its metric name.",
    ("src/repro/workloads/osu.py", "OsuResult.series"): "The sweep as (sizes, values).",
    ("src/repro/workloads/osu.py", "osu_bw"): "OSU uni-directional bandwidth (windowed back-to-back sends).",
    ("src/repro/workloads/osu.py", "osu_bibw"): "OSU bi-directional bandwidth (both ranks stream simultaneously).",
    ("src/repro/workloads/osu.py", "osu_latency"): "OSU latency: ping-pong, one-way microseconds per size.",
    ("src/repro/workloads/pingpong.py", "PingResult"): "Flood-ping outcome: RTT stats and losses.",
    # xen/domain.py
    ("src/repro/xen/domain.py", "Domain"): "A Xen domain: a Node plus domid, XenStore access, lifecycle hooks.",
    ("src/repro/xen/domain.py", "Domain.xs_prefix"): "This domain's XenStore subtree root.",
    ("src/repro/xen/domain.py", "Domain.xs_write"): "Permission-checked XenStore write (generator; charges CPU).",
    ("src/repro/xen/domain.py", "Domain.xs_read"): "Permission-checked XenStore read (generator; charges CPU).",
    ("src/repro/xen/domain.py", "Domain.xs_rm"): "Permission-checked XenStore subtree removal (generator).",
    ("src/repro/xen/domain.py", "Domain.xs_ls"): "Permission-checked XenStore directory listing (generator).",
    ("src/repro/xen/domain.py", "Domain.grant_table"): "This domain's grant table on its current machine.",
    # xen/event_channel.py
    ("src/repro/xen/event_channel.py", "EventChannelSubsys.set_handler"): "Install the upcall handler run in the port owner's context.",
    ("src/repro/xen/event_channel.py", "EventChannelSubsys.close_all_for"): "Close every port owned by ``domid`` (domain teardown).",
    # xen/grant_table.py
    ("src/repro/xen/grant_table.py", "GrantTable.map_grant"): "Map an access grant; only the named domain may (hypercall).",
    ("src/repro/xen/grant_table.py", "GrantTable.unmap_grant"): "Release a mapping previously obtained with map_grant.",
    ("src/repro/xen/grant_table.py", "GrantTable.lookup"): "The page behind ``gref``, or None.",
    ("src/repro/xen/grant_table.py", "GrantTable.active_entries"): "Number of live grant entries.",
    # xen/hypervisor.py
    ("src/repro/xen/hypervisor.py", "Hypervisor"): "Per-machine grant tables, event channels, and domid space.",
    ("src/repro/xen/hypervisor.py", "Hypervisor.alloc_domid"): "Allocate the next domain id (never reused).",
    ("src/repro/xen/hypervisor.py", "Hypervisor.register_domain"): "Register a domain and create its grant table.",
    ("src/repro/xen/hypervisor.py", "Hypervisor.unregister_domain"): "Drop a domain's grant table and close its event channels.",
    # xen/machine.py
    ("src/repro/xen/machine.py", "XenMachine.domains"): "domid -> Domain for every live domain (Dom0 included).",
    ("src/repro/xen/machine.py", "XenMachine.guests"): "Live unprivileged domains, in creation order.",
    # xen/page.py
    ("src/repro/xen/page.py", "Page.zero"): "Scrub the page (the security step the transfer path pays for).",
    ("src/repro/xen/page.py", "SharedRegion.n_pages"): "Number of pages in the region.",
    ("src/repro/xen/page.py", "SharedRegion.size"): "Region size in bytes.",
    ("src/repro/xen/page.py", "SharedRegion.zero"): "Scrub the whole region.",
    # xen/xenstore.py
    ("src/repro/xen/xenstore.py", "XenStore"): "Hierarchical key-value store with per-domain permissions and watches.",
    ("src/repro/xen/xenstore.py", "XenStore.write"): "Write a value (permission-checked; fires matching watches).",
    ("src/repro/xen/xenstore.py", "XenStore.read"): "Read a value (permission-checked; raises if absent).",
    ("src/repro/xen/xenstore.py", "XenStore.exists"): "Whether a node exists (permission-checked).",
    ("src/repro/xen/xenstore.py", "XenStore.ls"): "Sorted child names of a directory node (permission-checked).",
    ("src/repro/xen/xenstore.py", "XenStore.watch"): "Register a callback fired on writes/removals under a prefix.",
    ("src/repro/xen/xenstore.py", "XenStore.unwatch"): "Remove a previously registered watch callback.",
    # xennet/netback.py
    ("src/repro/xennet/netback.py", "VifBridgePort"): "The bridge port representing one guest's vif.",
    ("src/repro/xennet/netback.py", "VifBridgePort.deliver"): "Bridge -> guest: hand the frame to netback's receive path.",
    ("src/repro/xennet/netback.py", "Netback"): "Dom0 half of one vif: TX drain worker + RX injection + bridge port.",
    ("src/repro/xennet/netback.py", "Netback.bridge"): "The Dom0 software bridge on the current machine.",
    ("src/repro/xennet/netback.py", "Netback.on_interrupt"): "Guest kicked us: wake the TX drain worker.",
    ("src/repro/xennet/netback.py", "Netback.detach"): "Tear the netback down (guest shutdown or migration-out).",
    # xennet/netfront.py
    ("src/repro/xennet/netfront.py", "pages_for"): "Number of 4 KiB pages a buffer of ``nbytes`` spans.",
    ("src/repro/xennet/netfront.py", "VifDevice.tx_cost"): "Ring request build + per-page grant entries + notify hypercall.",
    ("src/repro/xennet/netfront.py", "VifDevice.rx_cost"): "Netfront per-packet receive bookkeeping.",
    ("src/repro/xennet/netfront.py", "VifDevice.queue_xmit"): "Hand the frame to netfront's transmit queue.",
    ("src/repro/xennet/netfront.py", "Netfront"): "Guest half of the split driver: vif device, rings, suspend/resume.",
    ("src/repro/xennet/netfront.py", "Netfront.suspend"): "Freeze transmission; queued packets move to the limbo list.",
    # xennet/ring.py
    ("src/repro/xennet/ring.py", "RingFullError"): "push_request on a ring with no free slots.",
    ("src/repro/xennet/ring.py", "SlottedRing"): "Request/response ring; slots held until responses are consumed.",
    ("src/repro/xennet/ring.py", "SlottedRing.free_slots"): "Slots available to the producer right now.",
    ("src/repro/xennet/ring.py", "SlottedRing.push_request"): "Producer: occupy a slot with a request (raises when full).",
    ("src/repro/xennet/ring.py", "SlottedRing.pop_response"): "Producer: consume a response, freeing its slot.",
    ("src/repro/xennet/ring.py", "SlottedRing.pop_request"): "Consumer: take the oldest request (None when empty).",
    ("src/repro/xennet/ring.py", "SlottedRing.push_response"): "Consumer: complete a request (slot frees at pop_response).",
    ("src/repro/xennet/ring.py", "SlottedRing.has_requests"): "Whether any requests await the consumer.",
    ("src/repro/xennet/ring.py", "SlottedRing.has_responses"): "Whether any responses await the producer.",
    ("src/repro/xennet/setup.py", "connect_vif"): "Wire (or re-wire) a guest's vif: rings, event channel, netback.",
}


def apply() -> int:
    by_file: dict[str, dict[str, str]] = {}
    for (path, name), doc in DOCS.items():
        by_file.setdefault(path, {})[name] = doc

    patched = 0
    for path, names in by_file.items():
        source = pathlib.Path(path).read_text()
        lines = source.splitlines(keepends=True)
        tree = ast.parse(source)
        insertions: list[tuple[int, str]] = []  # (line index, text)

        def visit(node, prefix=""):
            for child in getattr(node, "body", []):
                if isinstance(child, (ast.FunctionDef, ast.ClassDef)):
                    qual = prefix + child.name
                    if qual in names and not ast.get_docstring(child, clean=False):
                        first = child.body[0]
                        indent = " " * first.col_offset
                        insertions.append(
                            (first.lineno - 1, f'{indent}"""{names[qual]}"""\n')
                        )
                    if isinstance(child, ast.ClassDef):
                        visit(child, prefix + child.name + ".")

        visit(tree)
        for lineno, text in sorted(insertions, reverse=True):
            lines.insert(lineno, text)
            patched += 1
        pathlib.Path(path).write_text("".join(lines))
    return patched


if __name__ == "__main__":
    print(f"inserted {apply()} docstrings")
