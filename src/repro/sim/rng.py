"""Seeded randomness helpers.

All stochastic behaviour in the simulation draws from a generator
obtained here so that every scenario run is reproducible from a single
seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng"]

DEFAULT_SEED = 0x5EED


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Return a numpy Generator seeded deterministically.

    ``None`` maps to the project-wide default seed (not OS entropy) --
    simulations must be reproducible by default.
    """
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)
