"""Evaluation topologies from the paper, as declarative specs.

The package splits three concerns that used to share one module:

* :mod:`repro.scenarios.base` -- the :class:`Scenario` result object
  (endpoints + ``warmup()``).
* :mod:`repro.scenarios.registry` -- the ``@scenario`` decorator and
  the ``SCENARIO_BUILDERS`` registry that ``build()``/the CLI consume.
* :mod:`repro.scenarios.paper` -- the builders themselves, each a thin
  :class:`repro.topology.ClusterSpec` spec.

``from repro import scenarios`` keeps working exactly as before: every
public name of the old flat module is re-exported here.
"""

from __future__ import annotations

from repro.calibration import DEFAULT_COSTS, CostModel
from repro.scenarios.base import Scenario
from repro.scenarios.registry import (
    SCENARIO_BUILDERS,
    SCENARIO_SPECS,
    ScenarioSpec,
    build,
    scenario,
    scenario_names,
)

# Importing the builders registers them (must come after registry).
from repro.scenarios.bigcluster import bigcluster_spec, xenloop_bigcluster
from repro.scenarios.congestion import (
    run_fairness_cell,
    run_incast_cell,
    xenloop_fairness,
    xenloop_incast,
)
from repro.scenarios.fault_matrix import fault_matrix, run_fault_matrix
from repro.scenarios.serving import run_serving_cell, xenloop_serving
from repro.scenarios.paper import (
    inter_machine,
    migration_pair,
    native_loopback,
    netfront_netback,
    xenloop,
    xenloop_cluster,
    xenloop_mesh,
)

__all__ = [
    "CostModel",
    "DEFAULT_COSTS",
    "SCENARIO_BUILDERS",
    "SCENARIO_SPECS",
    "Scenario",
    "ScenarioSpec",
    "bigcluster_spec",
    "build",
    "fault_matrix",
    "inter_machine",
    "migration_pair",
    "native_loopback",
    "netfront_netback",
    "run_fairness_cell",
    "run_fault_matrix",
    "run_incast_cell",
    "run_serving_cell",
    "scenario",
    "scenario_names",
    "xenloop",
    "xenloop_bigcluster",
    "xenloop_cluster",
    "xenloop_fairness",
    "xenloop_incast",
    "xenloop_mesh",
    "xenloop_serving",
]
