"""UDP transport: sockets, demux, buffer drops, fragmentation path."""

import pytest

from repro.net.udp import MAX_DGRAM
from tests.conftest import run_gen


class TestSockets:
    def test_bind_specific_port(self, host):
        sock = host.stack.udp_socket(5000)
        assert sock.port == 5000

    def test_ephemeral_allocation(self, host):
        a = host.stack.udp_socket()
        b = host.stack.udp_socket()
        assert a.port != b.port

    def test_double_bind_rejected(self, host):
        host.stack.udp_socket(5000)
        with pytest.raises(OSError):
            host.stack.udp_socket(5000)

    def test_close_frees_port(self, host):
        sock = host.stack.udp_socket(5000)
        sock.close()
        host.stack.udp_socket(5000)  # rebind works

    def test_send_on_closed_raises(self, sim, host):
        sock = host.stack.udp_socket(5000)
        sock.close()
        with pytest.raises(OSError):
            run_gen(sim, sock.sendto(b"x", (host.stack.ip, 1)))

    def test_oversized_datagram_rejected(self, sim, host):
        sock = host.stack.udp_socket()
        with pytest.raises(ValueError):
            run_gen(sim, sock.sendto(bytes(MAX_DGRAM + 1), (host.stack.ip, 1)))


class TestDelivery:
    def test_loopback_roundtrip(self, sim, host):
        server = host.stack.udp_socket(6000)
        client = host.stack.udp_socket()

        def gen():
            yield from client.sendto(b"ping", (host.stack.ip, 6000))
            data, addr = yield from server.recvfrom()
            return data, addr

        data, addr = run_gen(sim, gen())
        assert data == b"ping"
        assert addr == (host.stack.ip, client.port)

    def test_inter_machine_roundtrip(self, sim, lan):
        a, b, _ = lan
        server = b.stack.udp_socket(6000)
        client = a.stack.udp_socket()

        def srv():
            data, addr = yield from server.recvfrom()
            yield from server.sendto(data.upper(), addr)

        def cli():
            yield from client.sendto(b"hello", (b.stack.ip, 6000))
            data, _addr = yield from client.recvfrom()
            return data

        sim.process(srv())
        assert run_gen(sim, cli()) == b"HELLO"

    def test_large_datagram_fragmented_on_wire(self, sim, lan):
        a, b, _ = lan
        server = b.stack.udp_socket(6000)
        client = a.stack.udp_socket()
        payload = bytes(range(256)) * 20  # 5120 bytes > MTU

        def cli():
            yield from client.sendto(payload, (b.stack.ip, 6000))

        def srv():
            data, _ = yield from server.recvfrom()
            return data

        sim.process(cli())
        got = run_gen(sim, srv())
        assert got == payload
        assert b.stack.ipv4.reassembler.completed == 1

    def test_unbound_port_counts_no_socket(self, sim, lan):
        a, b, _ = lan
        client = a.stack.udp_socket()

        def cli():
            yield from client.sendto(b"x", (b.stack.ip, 7777))

        run_gen(sim, cli())
        sim.run(until=sim.now + 0.01)
        assert b.stack.udp.rx_no_socket == 1

    def test_rcvbuf_overflow_drops(self, sim, host):
        server = host.stack.udp_socket(6000, rcvbuf=100)
        client = host.stack.udp_socket()

        def cli():
            for _ in range(5):
                yield from client.sendto(bytes(40), (host.stack.ip, 6000))

        run_gen(sim, cli())
        sim.run(until=sim.now + 0.01)
        assert server.drops == 3  # only two 40-byte datagrams fit in 100
        assert server.rx_msgs == 2

    def test_multiple_receivers_queue_order(self, sim, host):
        server = host.stack.udp_socket(6000)
        client = host.stack.udp_socket()

        def cli():
            for i in range(3):
                yield from client.sendto(bytes([i]), (host.stack.ip, 6000))

        got = []

        def srv():
            for _ in range(3):
                data, _ = yield from server.recvfrom()
                got.append(data[0])

        sim.process(cli())
        run_gen(sim, srv())
        assert got == [0, 1, 2]
